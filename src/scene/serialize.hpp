// Binary serialization of payloads, nodes, cameras and whole trees. This is
// the "direct socket communication to send binary information" path the
// paper drops to after SOAP-based discovery (§4.3): bulk geometry never
// travels as XML.
#pragma once

#include <cstdint>
#include <vector>

#include "scene/camera.hpp"
#include "scene/node.hpp"
#include "scene/tree.hpp"
#include "util/result.hpp"
#include "util/serial.hpp"

namespace rave::scene {

// Introspective marshalling statistics. The paper attributes its slow
// bootstrap (Table 5) to per-field introspection of every scene-graph node;
// we count the fields each serialization touches so the simulation layer
// can reproduce that cost model.
struct MarshalStats {
  uint64_t fields = 0;
  uint64_t bytes = 0;

  MarshalStats& operator+=(const MarshalStats& o) {
    fields += o.fields;
    bytes += o.bytes;
    return *this;
  }
};

void write_payload(util::ByteWriter& w, const NodePayload& payload, MarshalStats* stats = nullptr);
util::Result<NodePayload> read_payload(util::ByteReader& r);

void write_node(util::ByteWriter& w, const SceneNode& node, MarshalStats* stats = nullptr);
util::Result<SceneNode> read_node(util::ByteReader& r);

void write_camera(util::ByteWriter& w, const Camera& camera);
Camera read_camera(util::ByteReader& r);

// Whole-tree snapshot (depth-first node stream), used when a render service
// bootstraps from the data service.
std::vector<uint8_t> serialize_tree(const SceneTree& tree, MarshalStats* stats = nullptr);
util::Result<SceneTree> deserialize_tree(std::span<const uint8_t> data);

}  // namespace rave::scene

#include "scene/tree.hpp"

#include <algorithm>
#include <unordered_set>

namespace rave::scene {

using util::make_error;
using util::Status;

SceneTree::SceneTree() {
  SceneNode root;
  root.id = kRootNode;
  root.name = "root";
  nodes_.emplace(kRootNode, std::move(root));
}

Status SceneTree::add_node(NodeId parent, SceneNode node) {
  if (node.id == kInvalidNode) return make_error("add_node: node has no id");
  if (nodes_.count(node.id) != 0) return make_error("add_node: duplicate node id");
  auto parent_it = nodes_.find(parent);
  if (parent_it == nodes_.end()) return make_error("add_node: unknown parent");
  node.parent = parent;
  node.children.clear();
  parent_it->second.children.push_back(node.id);
  bump_next_id(node.id);
  nodes_.emplace(node.id, std::move(node));
  return {};
}

NodeId SceneTree::add_child(NodeId parent, std::string name, NodePayload payload,
                            const Mat4& transform) {
  SceneNode node;
  node.id = allocate_id();
  node.name = std::move(name);
  node.payload = std::move(payload);
  node.transform = transform;
  const NodeId id = node.id;
  const Status st = add_node(parent, std::move(node));
  return st.ok() ? id : kInvalidNode;
}

Status SceneTree::remove_node(NodeId id) {
  if (id == kRootNode) return make_error("remove_node: cannot remove root");
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return make_error("remove_node: unknown node");
  // Detach from parent.
  auto parent_it = nodes_.find(it->second.parent);
  if (parent_it != nodes_.end()) {
    auto& siblings = parent_it->second.children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), id), siblings.end());
  }
  // Erase subtree.
  std::vector<NodeId> doomed;
  collect_subtree(id, doomed);
  for (NodeId d : doomed) nodes_.erase(d);
  return {};
}

Status SceneTree::reparent(NodeId id, NodeId new_parent) {
  if (id == kRootNode) return make_error("reparent: cannot reparent root");
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return make_error("reparent: unknown node");
  if (nodes_.count(new_parent) == 0) return make_error("reparent: unknown parent");
  // Refuse making a node its own descendant.
  for (NodeId cursor = new_parent; cursor != kInvalidNode;) {
    if (cursor == id) return make_error("reparent: would create a cycle");
    cursor = nodes_.at(cursor).parent;
  }
  auto& old_siblings = nodes_.at(it->second.parent).children;
  old_siblings.erase(std::remove(old_siblings.begin(), old_siblings.end(), id),
                     old_siblings.end());
  it->second.parent = new_parent;
  nodes_.at(new_parent).children.push_back(id);
  return {};
}

Status SceneTree::set_transform(NodeId id, const Mat4& transform) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return make_error("set_transform: unknown node");
  it->second.transform = transform;
  return {};
}

Status SceneTree::set_payload(NodeId id, NodePayload payload) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return make_error("set_payload: unknown node");
  it->second.payload = std::move(payload);
  return {};
}

Status SceneTree::set_name(NodeId id, std::string name) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return make_error("set_name: unknown node");
  it->second.name = std::move(name);
  return {};
}

const SceneNode* SceneTree::find(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

SceneNode* SceneTree::find_mutable(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

NodeId SceneTree::find_by_name(const std::string& name) const {
  for (const auto& [id, node] : nodes_)
    if (node.name == name) return id;
  return kInvalidNode;
}

Mat4 SceneTree::world_transform(NodeId id) const {
  // Accumulate the parent chain root-first.
  std::vector<const SceneNode*> chain;
  for (NodeId cursor = id; cursor != kInvalidNode;) {
    auto it = nodes_.find(cursor);
    if (it == nodes_.end()) break;
    chain.push_back(&it->second);
    cursor = it->second.parent;
  }
  Mat4 world = Mat4::identity();
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) world = world * (*it)->transform;
  return world;
}

void SceneTree::traverse(const std::function<void(const SceneNode&, const Mat4&)>& visit,
                         NodeId start) const {
  auto it = nodes_.find(start);
  if (it == nodes_.end()) return;
  const Mat4 base =
      it->second.parent == kInvalidNode ? Mat4::identity() : world_transform(it->second.parent);
  // Explicit stack; scenes can be deep.
  std::vector<std::pair<NodeId, Mat4>> stack{{start, base}};
  while (!stack.empty()) {
    auto [id, parent_world] = stack.back();
    stack.pop_back();
    const SceneNode& node = nodes_.at(id);
    const Mat4 world = parent_world * node.transform;
    visit(node, world);
    for (auto child = node.children.rbegin(); child != node.children.rend(); ++child)
      stack.emplace_back(*child, world);
  }
}

std::vector<NodeId> SceneTree::ids_depth_first(NodeId start) const {
  std::vector<NodeId> out;
  if (nodes_.count(start) == 0) return out;
  std::vector<NodeId> stack{start};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const SceneNode& node = nodes_.at(id);
    for (auto child = node.children.rbegin(); child != node.children.rend(); ++child)
      stack.push_back(*child);
  }
  return out;
}

std::vector<NodeId> SceneTree::subtree_ids(const std::vector<NodeId>& roots) const {
  std::vector<NodeId> out;
  std::unordered_set<NodeId> seen;
  for (NodeId root : roots) {
    if (nodes_.count(root) == 0) continue;
    std::vector<NodeId> ids;
    collect_subtree(root, ids);
    for (NodeId id : ids)
      if (seen.insert(id).second) out.push_back(id);
  }
  return out;
}

SceneTree SceneTree::subset(const std::vector<NodeId>& ids) const {
  // Wanted set: requested subtrees plus ancestor chains (stripped).
  std::unordered_set<NodeId> keep_full;
  for (NodeId id : subtree_ids(ids)) keep_full.insert(id);
  std::unordered_set<NodeId> keep_any = keep_full;
  for (NodeId id : keep_full) {
    for (NodeId cursor = id; cursor != kInvalidNode;) {
      auto it = nodes_.find(cursor);
      if (it == nodes_.end()) break;
      keep_any.insert(cursor);
      cursor = it->second.parent;
    }
  }

  SceneTree out;
  // Copy the root's transform/name (it always exists in both trees).
  out.nodes_.at(kRootNode).transform = nodes_.at(kRootNode).transform;
  out.nodes_.at(kRootNode).name = nodes_.at(kRootNode).name;

  // Insert in depth-first order so parents precede children.
  for (NodeId id : ids_depth_first()) {
    if (id == kRootNode || keep_any.count(id) == 0) continue;
    const SceneNode& src = nodes_.at(id);
    SceneNode copy;
    copy.id = src.id;
    copy.name = src.name;
    copy.transform = src.transform;
    if (keep_full.count(id) != 0) copy.payload = src.payload;  // ancestors become bare groups
    (void)out.add_node(src.parent, std::move(copy));
  }
  out.next_id_ = next_id_;
  return out;
}

NodeMetrics SceneTree::total_metrics(NodeId start) const {
  NodeMetrics total;
  for (NodeId id : ids_depth_first(start)) total += nodes_.at(id).metrics();
  return total;
}

Aabb SceneTree::world_bounds() const {
  Aabb box;
  traverse([&](const SceneNode& node, const Mat4& world) {
    const Aabb local = node.local_bounds();
    if (local.valid()) box.extend(local.transformed(world));
  });
  return box;
}

std::vector<NodeId> SceneTree::payload_node_ids() const {
  std::vector<NodeId> out;
  for (NodeId id : ids_depth_first())
    if (!std::holds_alternative<std::monostate>(nodes_.at(id).payload)) out.push_back(id);
  return out;
}

void SceneTree::collect_subtree(NodeId id, std::vector<NodeId>& out) const {
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) continue;
    out.push_back(cur);
    for (NodeId child : it->second.children) stack.push_back(child);
  }
}

}  // namespace rave::scene

// SceneTree: the shared hierarchical dataset held by the data service and
// mirrored (fully or as a subset) by every render service. Node ids are
// stable across the distributed system — the data service allocates them,
// updates reference them, and subset extraction preserves them.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "scene/node.hpp"
#include "util/result.hpp"

namespace rave::scene {

class SceneTree {
 public:
  // A tree always has a Group root with id kRootNode.
  SceneTree();

  SceneTree(const SceneTree&) = default;
  SceneTree& operator=(const SceneTree&) = default;
  SceneTree(SceneTree&&) = default;
  SceneTree& operator=(SceneTree&&) = default;

  // Id allocation (data-service side; replicas receive ids via updates).
  NodeId allocate_id() { return next_id_++; }

  // Insert `node` (which must carry a fresh id) under `parent`.
  util::Status add_node(NodeId parent, SceneNode node);

  // Convenience: allocate an id, build and insert, return the id.
  NodeId add_child(NodeId parent, std::string name, NodePayload payload = std::monostate{},
                   const Mat4& transform = Mat4::identity());

  // Remove a node and its entire subtree. Removing the root is refused.
  util::Status remove_node(NodeId id);

  // Move a subtree under a new parent; refuses cycles.
  util::Status reparent(NodeId id, NodeId new_parent);

  util::Status set_transform(NodeId id, const Mat4& transform);
  util::Status set_payload(NodeId id, NodePayload payload);
  util::Status set_name(NodeId id, std::string name);

  [[nodiscard]] bool contains(NodeId id) const { return nodes_.count(id) != 0; }
  [[nodiscard]] const SceneNode* find(NodeId id) const;
  [[nodiscard]] SceneNode* find_mutable(NodeId id);
  [[nodiscard]] NodeId find_by_name(const std::string& name) const;

  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const SceneNode& root() const { return nodes_.at(kRootNode); }

  // Composite transform from the root down to (and including) `id`.
  [[nodiscard]] Mat4 world_transform(NodeId id) const;

  // Depth-first visit of the subtree at `start` with accumulated world
  // transforms.
  void traverse(const std::function<void(const SceneNode&, const Mat4& world)>& visit,
                NodeId start = kRootNode) const;

  // All node ids in depth-first order (stable across replicas, since child
  // order is preserved by updates).
  [[nodiscard]] std::vector<NodeId> ids_depth_first(NodeId start = kRootNode) const;

  // Ids of all nodes in the subtree rooted at each of `roots`, de-duplicated.
  [[nodiscard]] std::vector<NodeId> subtree_ids(const std::vector<NodeId>& roots) const;

  // Extract a subset tree containing `ids` plus every ancestor needed "to
  // orientate the scene subset in the world" (paper §3.2.5). Payloads of
  // ancestor nodes not in `ids` are stripped to empty groups.
  [[nodiscard]] SceneTree subset(const std::vector<NodeId>& ids) const;

  // Aggregate demand metrics over the subtree at `start`.
  [[nodiscard]] NodeMetrics total_metrics(NodeId start = kRootNode) const;

  // World-space bounds of the whole tree.
  [[nodiscard]] Aabb world_bounds() const;

  // Ids of leaf (payload-carrying) nodes, the unit of dataset distribution.
  [[nodiscard]] std::vector<NodeId> payload_node_ids() const;

  // Replicas must allocate above the ids they have seen.
  void bump_next_id(NodeId seen) {
    if (seen >= next_id_) next_id_ = seen + 1;
  }
  [[nodiscard]] NodeId peek_next_id() const { return next_id_; }

 private:
  void collect_subtree(NodeId id, std::vector<NodeId>& out) const;

  std::unordered_map<NodeId, SceneNode> nodes_;
  NodeId next_id_ = kRootNode + 1;
};

}  // namespace rave::scene

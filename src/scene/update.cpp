#include "scene/update.hpp"

#include "scene/serialize.hpp"

namespace rave::scene {

using util::make_error;
using util::Result;
using util::Status;

Status SceneUpdate::apply(SceneTree& tree) const {
  switch (kind) {
    case UpdateKind::AddNode: {
      SceneNode copy = new_node;
      copy.id = node != kInvalidNode ? node : new_node.id;
      return tree.add_node(parent, std::move(copy));
    }
    case UpdateKind::RemoveNode:
      return tree.remove_node(node);
    case UpdateKind::SetTransform:
      return tree.set_transform(node, transform);
    case UpdateKind::SetPayload:
      return tree.set_payload(node, payload);
    case UpdateKind::SetName:
      return tree.set_name(node, name);
    case UpdateKind::Reparent:
      return tree.reparent(node, parent);
  }
  return make_error("apply: unknown update kind");
}

SceneUpdate SceneUpdate::add_node(NodeId parent, SceneNode node) {
  SceneUpdate u;
  u.kind = UpdateKind::AddNode;
  u.parent = parent;
  u.node = node.id;
  u.new_node = std::move(node);
  return u;
}

SceneUpdate SceneUpdate::remove_node(NodeId node) {
  SceneUpdate u;
  u.kind = UpdateKind::RemoveNode;
  u.node = node;
  return u;
}

SceneUpdate SceneUpdate::set_transform(NodeId node, const Mat4& m) {
  SceneUpdate u;
  u.kind = UpdateKind::SetTransform;
  u.node = node;
  u.transform = m;
  return u;
}

SceneUpdate SceneUpdate::set_payload(NodeId node, NodePayload payload) {
  SceneUpdate u;
  u.kind = UpdateKind::SetPayload;
  u.node = node;
  u.payload = std::move(payload);
  return u;
}

SceneUpdate SceneUpdate::set_name(NodeId node, std::string name) {
  SceneUpdate u;
  u.kind = UpdateKind::SetName;
  u.node = node;
  u.name = std::move(name);
  return u;
}

SceneUpdate SceneUpdate::reparent(NodeId node, NodeId new_parent) {
  SceneUpdate u;
  u.kind = UpdateKind::Reparent;
  u.node = node;
  u.parent = new_parent;
  return u;
}

void write_update(util::ByteWriter& w, const SceneUpdate& update) {
  w.u64(update.sequence);
  w.u64(update.author);
  w.f64(update.timestamp);
  w.u8(static_cast<uint8_t>(update.kind));
  w.u64(update.node);
  w.u64(update.parent);
  switch (update.kind) {
    case UpdateKind::AddNode:
      write_node(w, update.new_node);
      break;
    case UpdateKind::SetTransform:
      w.mat4(update.transform);
      break;
    case UpdateKind::SetPayload:
      write_payload(w, update.payload);
      break;
    case UpdateKind::SetName:
      w.str(update.name);
      break;
    case UpdateKind::RemoveNode:
    case UpdateKind::Reparent:
      break;
  }
}

Result<SceneUpdate> read_update(util::ByteReader& r) {
  SceneUpdate u;
  u.sequence = r.u64();
  u.author = r.u64();
  u.timestamp = r.f64();
  u.kind = static_cast<UpdateKind>(r.u8());
  u.node = r.u64();
  u.parent = r.u64();
  if (!r.ok()) return make_error("read_update: truncated header");
  switch (u.kind) {
    case UpdateKind::AddNode: {
      auto node = read_node(r);
      if (!node.ok()) return make_error(node.error());
      u.new_node = std::move(node).take();
      break;
    }
    case UpdateKind::SetTransform:
      u.transform = r.mat4();
      break;
    case UpdateKind::SetPayload: {
      auto payload = read_payload(r);
      if (!payload.ok()) return make_error(payload.error());
      u.payload = std::move(payload).take();
      break;
    }
    case UpdateKind::SetName:
      u.name = r.str();
      break;
    case UpdateKind::RemoveNode:
    case UpdateKind::Reparent:
      break;
    default:
      return make_error("read_update: unknown kind");
  }
  if (!r.ok()) return make_error("read_update: truncated body");
  return u;
}

}  // namespace rave::scene

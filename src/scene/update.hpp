// Scene updates: the unit of collaboration. Clients make local changes,
// send them to the data service, and the service reflects them to every
// subscribed render service whose interest set covers the touched nodes
// (paper §3.1.1/§3.2.4). Updates also form the audit trail for session
// record and playback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scene/camera.hpp"
#include "scene/node.hpp"
#include "scene/tree.hpp"
#include "util/result.hpp"
#include "util/serial.hpp"

namespace rave::scene {

enum class UpdateKind : uint8_t {
  AddNode = 0,
  RemoveNode = 1,
  SetTransform = 2,
  SetPayload = 3,
  SetName = 4,
  Reparent = 5,
};

struct SceneUpdate {
  uint64_t sequence = 0;  // assigned by the data service when committed
  uint64_t author = 0;    // client id that originated the change
  double timestamp = 0.0;

  UpdateKind kind = UpdateKind::SetTransform;
  NodeId node = kInvalidNode;

  // AddNode / Reparent
  NodeId parent = kInvalidNode;
  // AddNode payload (full node snapshot, id filled in by originator via
  // data-service id allocation or by the service on commit)
  SceneNode new_node;
  // SetTransform
  Mat4 transform = Mat4::identity();
  // SetPayload
  NodePayload payload;
  // SetName
  std::string name;

  [[nodiscard]] util::Status apply(SceneTree& tree) const;

  // The node whose subtree this update touches (for interest filtering).
  [[nodiscard]] NodeId touched_node() const {
    return kind == UpdateKind::AddNode ? parent : node;
  }

  static SceneUpdate add_node(NodeId parent, SceneNode node);
  static SceneUpdate remove_node(NodeId node);
  static SceneUpdate set_transform(NodeId node, const Mat4& m);
  static SceneUpdate set_payload(NodeId node, NodePayload payload);
  static SceneUpdate set_name(NodeId node, std::string name);
  static SceneUpdate reparent(NodeId node, NodeId new_parent);
};

void write_update(util::ByteWriter& w, const SceneUpdate& update);
util::Result<SceneUpdate> read_update(util::ByteReader& r);

}  // namespace rave::scene

#include "scene/volume.hpp"

#include <algorithm>

namespace rave::scene {

std::vector<VoxelGridData> split_voxel_grid(const VoxelGridData& grid, uint32_t bx, uint32_t by,
                                            uint32_t bz) {
  std::vector<VoxelGridData> blocks;
  if (grid.voxel_count() == 0) return blocks;
  bx = std::max<uint32_t>(1, std::min(bx, grid.nx / 2 == 0 ? 1 : grid.nx / 2));
  by = std::max<uint32_t>(1, std::min(by, grid.ny / 2 == 0 ? 1 : grid.ny / 2));
  bz = std::max<uint32_t>(1, std::min(bz, grid.nz / 2 == 0 ? 1 : grid.nz / 2));

  const auto split_axis = [](uint32_t n, uint32_t parts, uint32_t part) {
    // [begin, end) of this part before overlap.
    const uint32_t begin = n * part / parts;
    const uint32_t end = n * (part + 1) / parts;
    return std::pair<uint32_t, uint32_t>(begin, end);
  };

  for (uint32_t pz = 0; pz < bz; ++pz) {
    for (uint32_t py = 0; py < by; ++py) {
      for (uint32_t px = 0; px < bx; ++px) {
        auto [x0, x1] = split_axis(grid.nx, bx, px);
        auto [y0, y1] = split_axis(grid.ny, by, py);
        auto [z0, z1] = split_axis(grid.nz, bz, pz);
        // One-sample overlap on the low side of internal boundaries keeps
        // trilinear interpolation continuous across block seams.
        if (x0 > 0) --x0;
        if (y0 > 0) --y0;
        if (z0 > 0) --z0;

        VoxelGridData block;
        block.nx = x1 - x0;
        block.ny = y1 - y0;
        block.nz = z1 - z0;
        block.spacing = grid.spacing;
        block.origin = grid.origin + util::Vec3{grid.spacing.x * static_cast<float>(x0),
                                                grid.spacing.y * static_cast<float>(y0),
                                                grid.spacing.z * static_cast<float>(z0)};
        block.iso_low = grid.iso_low;
        block.iso_high = grid.iso_high;
        block.color_low = grid.color_low;
        block.color_high = grid.color_high;
        block.opacity_scale = grid.opacity_scale;
        block.values.resize(block.voxel_count());
        for (uint32_t z = 0; z < block.nz; ++z)
          for (uint32_t y = 0; y < block.ny; ++y)
            for (uint32_t x = 0; x < block.nx; ++x)
              block.at(x, y, z) = grid.at(x0 + x, y0 + y, z0 + z);
        blocks.push_back(std::move(block));
      }
    }
  }
  return blocks;
}

util::Result<std::vector<NodeId>> explode_volume_node(SceneTree& tree, NodeId volume_node,
                                                      uint32_t bx, uint32_t by, uint32_t bz) {
  SceneNode* node = tree.find_mutable(volume_node);
  if (node == nullptr) return util::make_error("explode_volume: unknown node");
  const auto* grid = std::get_if<VoxelGridData>(&node->payload);
  if (grid == nullptr) return util::make_error("explode_volume: node is not a voxel grid");

  std::vector<VoxelGridData> blocks = split_voxel_grid(*grid, bx, by, bz);
  const std::string base_name = node->name;
  // The volume node becomes a bare group holding the blocks; its transform
  // is preserved so the blocks stay in place.
  (void)tree.set_payload(volume_node, std::monostate{});
  std::vector<NodeId> ids;
  ids.reserve(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const NodeId id = tree.add_child(volume_node, base_name + "/block" + std::to_string(i),
                                     std::move(blocks[i]));
    if (id == kInvalidNode) return util::make_error("explode_volume: insertion failed");
    ids.push_back(id);
  }
  return ids;
}

float block_view_distance(const VoxelGridData& block, const util::Mat4& world,
                          const util::Vec3& eye) {
  const util::Vec3 center_local = block.bounds().center();
  return (world.transform_point(center_local) - eye).length();
}

}  // namespace rave::scene

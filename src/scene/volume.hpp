// Volume sub-block decomposition — the paper's §6 plan for distributing
// voxel data across render services: "Subset blocks of the volume can be
// blended, even though they contain transparency, by considering their
// relative distance from the view in the order of blending (such as
// Visapult)." Blocks become ordinary scene nodes, so the existing subset
// distribution and migration machinery moves them between services.
#pragma once

#include <vector>

#include "scene/node.hpp"
#include "scene/tree.hpp"

namespace rave::scene {

// Split a grid into up to bx*by*bz blocks (fewer when a dimension is too
// small). Each block carries a one-sample overlap at internal boundaries
// so trilinear sampling across the seam matches the monolithic grid.
std::vector<VoxelGridData> split_voxel_grid(const VoxelGridData& grid, uint32_t bx, uint32_t by,
                                            uint32_t bz);

// Replace a VoxelGrid node in place with a group of block children named
// "<name>/block<i>". Returns the ids of the block nodes.
util::Result<std::vector<NodeId>> explode_volume_node(SceneTree& tree, NodeId volume_node,
                                                      uint32_t bx, uint32_t by, uint32_t bz);

// View distance of a block (for back-to-front ordered blending).
float block_view_distance(const VoxelGridData& block, const util::Mat4& world,
                          const util::Vec3& eye);

}  // namespace rave::scene

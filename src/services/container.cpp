#include "services/container.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rave::services {

using util::make_error;
using util::Result;

namespace {
// Process-wide SOAP traffic counters, labelled by endpoint so the scrape
// separates control-plane load per service.
void account_call(const std::string& service, bool fault) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("rave_soap_calls_total", {{"service", service}}).inc();
  if (fault) reg.counter("rave_soap_faults_total", {{"service", service}}).inc();
}
}  // namespace

void ServiceContainer::register_method(const std::string& endpoint, const std::string& method,
                                       Handler handler) {
  std::lock_guard lock(mu_);
  endpoints_[endpoint][method] = std::move(handler);
}

void ServiceContainer::unregister_endpoint(const std::string& endpoint) {
  std::lock_guard lock(mu_);
  endpoints_.erase(endpoint);
}

std::vector<std::string> ServiceContainer::endpoints() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [name, methods] : endpoints_) out.push_back(name);
  return out;
}

void ServiceContainer::bind_channel(net::ChannelPtr channel) {
  std::lock_guard lock(mu_);
  channels_.push_back(std::move(channel));
}

SoapResponse ServiceContainer::dispatch(const SoapCall& call) {
  Handler handler;
  {
    std::lock_guard lock(mu_);
    auto ep = endpoints_.find(call.service);
    if (ep != endpoints_.end()) {
      auto m = ep->second.find(call.method);
      if (m != ep->second.end()) handler = m->second;
    }
  }
  SoapResponse response;
  response.call_id = call.call_id;
  if (!handler) {
    response.is_fault = true;
    response.fault_message = "no such operation: " + call.service + "." + call.method;
  } else {
    Result<SoapValue> result = handler(call.args);
    if (result.ok()) {
      response.result = std::move(result).take();
    } else {
      response.is_fault = true;
      response.fault_message = result.error();
    }
  }
  {
    std::lock_guard lock(mu_);
    stats_.calls_served++;
    if (response.is_fault) stats_.faults++;
  }
  account_call(call.service, response.is_fault);
  return response;
}

bool ServiceContainer::serve_one(net::Channel& channel) {
  auto msg = channel.try_receive();
  if (!msg.has_value() || msg->type != kSoapRequestType) return false;
  const std::string xml(msg->payload.begin(), msg->payload.end());
  {
    std::lock_guard lock(mu_);
    stats_.request_bytes += msg->payload.size();
  }
  SoapResponse response;
  auto call = decode_call(xml);
  if (!call.ok()) {
    response.is_fault = true;
    response.fault_message = call.error();
  } else {
    // Adopt the trace context the request message carried (if any) so the
    // handler's spans stitch into the caller's frame timeline.
    obs::ScopedSpan span("soap:" + call.value().service + "." + call.value().method,
                         call.value().service,
                         obs::TraceContext{msg->trace_id, msg->span_id});
    response = dispatch(call.value());
  }
  const std::string out = encode_response(response);
  {
    std::lock_guard lock(mu_);
    stats_.response_bytes += out.size();
  }
  net::Message reply{kSoapResponseType, std::vector<uint8_t>(out.begin(), out.end())};
  reply.trace_id = msg->trace_id;
  reply.span_id = msg->span_id;
  (void)channel.send(std::move(reply));
  return true;
}

size_t ServiceContainer::pump() {
  std::vector<net::ChannelPtr> channels;
  {
    std::lock_guard lock(mu_);
    channels = channels_;
  }
  size_t served = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& ch : channels) {
      while (serve_one(*ch)) {
        ++served;
        progress = true;
      }
    }
  }
  // A drained, closed channel never produces work again: prune it so a
  // long-lived container (probed every collector tick) doesn't accumulate
  // dead ends.
  {
    std::lock_guard lock(mu_);
    channels_.erase(std::remove_if(channels_.begin(), channels_.end(),
                                   [](const net::ChannelPtr& ch) { return !ch->is_open(); }),
                    channels_.end());
  }
  return served;
}

void ServiceContainer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  server_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      if (pump() == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
}

void ServiceContainer::stop() {
  if (!running_.exchange(false)) return;
  if (server_.joinable()) server_.join();
}

ServiceContainer::~ServiceContainer() { stop(); }

ContainerStats ServiceContainer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

ServiceProxy::ServiceProxy(net::ChannelPtr channel, std::string endpoint)
    : channel_(std::move(channel)), endpoint_(std::move(endpoint)) {}

Result<SoapValue> ServiceProxy::call(const std::string& method, SoapList args,
                                     double timeout_seconds) {
  SoapCall request;
  request.service = endpoint_;
  request.method = method;
  request.call_id = next_call_id_++;
  request.args = std::move(args);
  const std::string xml = encode_call(request);
  bytes_exchanged_ += xml.size();
  net::Message req{kSoapRequestType, std::vector<uint8_t>(xml.begin(), xml.end())};
  const obs::TraceContext ctx = obs::Tracer::current();
  req.trace_id = ctx.trace_id;
  req.span_id = ctx.span_id;
  const util::Status sent = channel_->send(std::move(req));
  if (!sent.ok()) return make_error("proxy: " + sent.error());

  // Await the correlated response; unrelated messages are not expected on
  // a proxy channel (one logical conversation per channel).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    const double remaining =
        std::chrono::duration<double>(deadline - std::chrono::steady_clock::now()).count();
    if (remaining <= 0) return make_error("proxy: call timed out: " + endpoint_ + "." + method);
    auto msg = channel_->receive(remaining);
    if (!msg.has_value()) return make_error("proxy: call timed out: " + endpoint_ + "." + method);
    if (msg->type != kSoapResponseType) continue;
    bytes_exchanged_ += msg->payload.size();
    auto response = decode_response(std::string(msg->payload.begin(), msg->payload.end()));
    if (!response.ok()) return make_error(response.error());
    if (response.value().call_id != request.call_id) continue;  // stale
    if (response.value().is_fault) return make_error(response.value().fault_message);
    return std::move(response).take().result;
  }
}

}  // namespace rave::services

// Service container and client proxy — the Axis/Tomcat analogue. A
// container hosts named endpoints; SOAP calls arrive on bound channels,
// are decoded, dispatched, and answered. The paper wraps its service
// "engine" so that only this layer changes between OGSA, plain Web
// services and a test environment (§4.3); here the same engine runs over
// in-process channels, simulated links or TCP without modification.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "services/soap.hpp"
#include "util/result.hpp"

namespace rave::services {

struct ContainerStats {
  uint64_t calls_served = 0;
  uint64_t faults = 0;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
};

class ServiceContainer {
 public:
  using Handler = std::function<util::Result<SoapValue>(const SoapList& args)>;

  // Register `endpoint.method`; replaces any existing handler.
  void register_method(const std::string& endpoint, const std::string& method, Handler handler);
  void unregister_endpoint(const std::string& endpoint);
  [[nodiscard]] std::vector<std::string> endpoints() const;

  // Attach a transport the container will answer requests on.
  void bind_channel(net::ChannelPtr channel);

  // Drain pending requests on every bound channel; returns the number of
  // calls served. Single-threaded, deterministic — the test/bench driver.
  size_t pump();

  // Serve continuously on a background thread until stop().
  void start();
  void stop();

  // Dispatch a call directly (no transport) — used by in-process clients
  // and by transports that already decoded the envelope.
  SoapResponse dispatch(const SoapCall& call);

  [[nodiscard]] ContainerStats stats() const;

  ~ServiceContainer();

 private:
  bool serve_one(net::Channel& channel);

  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, Handler>> endpoints_;
  std::vector<net::ChannelPtr> channels_;
  ContainerStats stats_;
  std::thread server_;
  std::atomic<bool> running_{false};
};

// Client-side proxy for one endpoint over one channel. Calls are
// synchronous: encode → send → await correlated response.
class ServiceProxy {
 public:
  ServiceProxy(net::ChannelPtr channel, std::string endpoint);

  util::Result<SoapValue> call(const std::string& method, SoapList args = {},
                               double timeout_seconds = 5.0);

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] uint64_t bytes_exchanged() const { return bytes_exchanged_; }

 private:
  net::ChannelPtr channel_;
  std::string endpoint_;
  uint64_t next_call_id_ = 1;
  uint64_t bytes_exchanged_ = 0;
};

}  // namespace rave::services

#include "services/ldap.hpp"

#include <algorithm>
#include <cctype>

namespace rave::services {

using util::make_error;
using util::Status;

namespace {
std::string normalize_dn(const std::string& dn) {
  // Lower-case attribute types, trim spaces around commas/equals.
  std::string out;
  out.reserve(dn.size());
  bool in_type = true;
  for (size_t i = 0; i < dn.size(); ++i) {
    char c = dn[i];
    if (c == ' ' && (i + 1 >= dn.size() || dn[i + 1] == ',' || (i > 0 && dn[i - 1] == ',') ||
                     (i > 0 && dn[i - 1] == '=') || (i + 1 < dn.size() && dn[i + 1] == '=')))
      continue;  // cosmetic whitespace
    if (c == '=') in_type = false;
    if (c == ',') in_type = true;
    out.push_back(in_type ? static_cast<char>(std::tolower(static_cast<unsigned char>(c))) : c);
  }
  return out;
}
}  // namespace

LdapDirectory::LdapDirectory(std::string suffix) : suffix_(normalize_dn(suffix)) {
  LdapEntry root;
  root.dn = suffix_;
  root.attributes["objectClass"] = {"dcObject"};
  entries_.emplace(suffix_, std::move(root));
}

std::string LdapDirectory::parent_dn(const std::string& dn) {
  // The first unescaped comma separates the RDN from the parent.
  const size_t comma = dn.find(',');
  return comma == std::string::npos ? "" : dn.substr(comma + 1);
}

Status LdapDirectory::add(const std::string& dn,
                          std::map<std::string, std::vector<std::string>> attributes) {
  const std::string normalized = normalize_dn(dn);
  if (entries_.count(normalized) != 0) return make_error("ldap: entryAlreadyExists " + dn);
  const std::string parent = parent_dn(normalized);
  if (parent.empty() || entries_.count(parent) == 0)
    return make_error("ldap: noSuchObject (parent) " + parent);
  LdapEntry entry;
  entry.dn = normalized;
  entry.attributes = std::move(attributes);
  entries_.emplace(normalized, std::move(entry));
  return {};
}

Status LdapDirectory::remove(const std::string& dn) {
  const std::string normalized = normalize_dn(dn);
  if (normalized == suffix_) return make_error("ldap: cannot remove the suffix");
  if (entries_.count(normalized) == 0) return make_error("ldap: noSuchObject " + dn);
  // Remove the entry and every descendant (",<dn>" suffix match).
  const std::string tail = "," + normalized;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool descendant = it->first.size() > tail.size() &&
                            it->first.compare(it->first.size() - tail.size(), tail.size(),
                                              tail) == 0;
    if (it->first == normalized || descendant)
      it = entries_.erase(it);
    else
      ++it;
  }
  return {};
}

std::optional<LdapEntry> LdapDirectory::lookup(const std::string& dn) const {
  auto it = entries_.find(normalize_dn(dn));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool LdapDirectory::wildcard_match(const std::string& pattern, const std::string& value) {
  // Classic two-pointer wildcard match with backtracking.
  size_t p = 0, v = 0, star = std::string::npos, match = 0;
  while (v < value.size()) {
    if (p < pattern.size() && (pattern[p] == value[v])) {
      ++p;
      ++v;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = v;
    } else if (star != std::string::npos) {
      p = star + 1;
      v = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<LdapEntry> LdapDirectory::search(const std::string& base, LdapScope scope,
                                             const std::string& attribute,
                                             const std::string& pattern) const {
  std::vector<LdapEntry> out;
  const std::string normalized_base = normalize_dn(base);
  if (entries_.count(normalized_base) == 0) return out;
  const std::string tail = "," + normalized_base;
  for (const auto& [dn, entry] : entries_) {
    bool in_scope = false;
    switch (scope) {
      case LdapScope::Base:
        in_scope = dn == normalized_base;
        break;
      case LdapScope::OneLevel:
        in_scope = dn.size() > tail.size() &&
                   dn.compare(dn.size() - tail.size(), tail.size(), tail) == 0 &&
                   dn.substr(0, dn.size() - tail.size()).find(',') == std::string::npos;
        break;
      case LdapScope::Subtree:
        in_scope = dn == normalized_base ||
                   (dn.size() > tail.size() &&
                    dn.compare(dn.size() - tail.size(), tail.size(), tail) == 0);
        break;
    }
    if (!in_scope) continue;
    if (!attribute.empty()) {
      auto it = entry.attributes.find(attribute);
      if (it == entry.attributes.end()) continue;
      const bool any = std::any_of(it->second.begin(), it->second.end(),
                                   [&](const std::string& value) {
                                     return wildcard_match(pattern, value);
                                   });
      if (!any) continue;
    }
    out.push_back(entry);
  }
  return out;
}

Status ldap_advertise(LdapDirectory& directory, const std::string& host,
                      const std::string& service_name, const std::string& access_point,
                      const std::string& tmodel_name, const std::string& instance_info) {
  const std::string org = "o=" + host + "," + directory.suffix();
  if (!directory.lookup(org).has_value()) {
    const Status added = directory.add(org, {{"objectClass", {"organization"}},
                                             {"o", {host}}});
    if (!added.ok()) return added;
  }
  const std::string services_ou = "ou=services," + org;
  if (!directory.lookup(services_ou).has_value()) {
    const Status added = directory.add(
        services_ou, {{"objectClass", {"organizationalUnit"}}, {"ou", {"services"}}});
    if (!added.ok()) return added;
  }
  const std::string dn = "cn=" + service_name + "," + services_ou;
  if (directory.lookup(dn).has_value()) (void)directory.remove(dn);  // re-advertise
  return directory.add(dn, {{"objectClass", {tmodel_name}},
                            {"cn", {service_name}},
                            {"labeledURI", {access_point}},
                            {"description", {instance_info}}});
}

std::vector<LdapEntry> ldap_find_services(const LdapDirectory& directory,
                                          const std::string& tmodel_name) {
  return directory.search(directory.suffix(), LdapScope::Subtree, "objectClass", tmodel_name);
}

}  // namespace rave::services

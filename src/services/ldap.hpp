// LDAP-style directory service. The paper (§4.3, citing RFC 1777) notes
// that "Grid and Web services can both be advertised through standard
// directory services, such as LDAP or UDDI" — UDDI was chosen for its Java
// support, but the architecture does not depend on it. This module is the
// LDAP alternative: a hierarchical DN tree with attribute search, plus an
// adapter exposing the same advertise/discover operations the RAVE
// services use against the UDDI registry.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace rave::services {

// A distinguished name is stored normalized, e.g.
// "cn=render:Skull,ou=services,o=tower,dc=rave".
struct LdapEntry {
  std::string dn;
  std::map<std::string, std::vector<std::string>> attributes;

  [[nodiscard]] std::string first(const std::string& attribute) const {
    auto it = attributes.find(attribute);
    return it == attributes.end() || it->second.empty() ? "" : it->second.front();
  }
};

enum class LdapScope : uint8_t {
  Base,      // the entry itself
  OneLevel,  // direct children
  Subtree,   // entry and all descendants
};

class LdapDirectory {
 public:
  // The directory is rooted at `suffix` (e.g. "dc=rave").
  explicit LdapDirectory(std::string suffix = "dc=rave");

  [[nodiscard]] const std::string& suffix() const { return suffix_; }

  // Add an entry; its parent must already exist ("dc=rave" always does).
  util::Status add(const std::string& dn,
                   std::map<std::string, std::vector<std::string>> attributes);

  // Remove an entry and its whole subtree.
  util::Status remove(const std::string& dn);

  [[nodiscard]] std::optional<LdapEntry> lookup(const std::string& dn) const;

  // Entries under `base` (per scope) where `attribute` has a value
  // matching `pattern` ('*' wildcards, as in LDAP filters). Empty
  // attribute matches every entry in scope.
  [[nodiscard]] std::vector<LdapEntry> search(const std::string& base, LdapScope scope,
                                              const std::string& attribute = "",
                                              const std::string& pattern = "*") const;

  [[nodiscard]] size_t size() const { return entries_.size(); }

  // LDAP filter wildcard match ('*' spans any run of characters).
  static bool wildcard_match(const std::string& pattern, const std::string& value);

  // Parent DN ("cn=a,o=b,dc=rave" → "o=b,dc=rave"; the suffix has none).
  static std::string parent_dn(const std::string& dn);

 private:
  std::string suffix_;
  std::map<std::string, LdapEntry> entries_;
};

// --- RAVE adapter --------------------------------------------------------------
// DN layout: cn=<service>,ou=services,o=<host>,<suffix>. The technical
// model travels as the "objectClass" attribute, the transport address as
// "labeledURI" — standard-ish LDAP attribute names.

util::Status ldap_advertise(LdapDirectory& directory, const std::string& host,
                            const std::string& service_name, const std::string& access_point,
                            const std::string& tmodel_name,
                            const std::string& instance_info = "");

// The discovery scan: every access point advertising `tmodel_name`.
std::vector<LdapEntry> ldap_find_services(const LdapDirectory& directory,
                                          const std::string& tmodel_name);

}  // namespace rave::services

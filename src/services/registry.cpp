#include "services/registry.hpp"

#include <algorithm>

namespace rave::services {

using util::make_error;
using util::Result;

std::string UddiRegistry::next_key(const char* kind) {
  return std::string("uddi:") + kind + ":" + std::to_string(next_id_++);
}

std::string UddiRegistry::register_tmodel(const ServiceDescriptor& descriptor) {
  std::lock_guard lock(mu_);
  const std::string signature = api_signature(descriptor);
  for (const TModel& t : tmodels_)
    if (t.signature == signature) return t.key;  // idempotent
  TModel model;
  model.key = next_key("tmodel");
  model.name = descriptor.name;
  model.wsdl = to_wsdl(descriptor);
  model.signature = signature;
  tmodels_.push_back(model);
  return model.key;
}

std::string UddiRegistry::register_business(const std::string& name) {
  std::lock_guard lock(mu_);
  for (const Business& b : businesses_)
    if (b.name == name) return b.key;
  Business business;
  business.key = next_key("business");
  business.name = name;
  businesses_.push_back(business);
  return business.key;
}

Result<std::string> UddiRegistry::register_service(const std::string& business_key,
                                                   const std::string& name) {
  std::lock_guard lock(mu_);
  for (Business& b : businesses_) {
    if (b.key != business_key) continue;
    // Idempotent by (business, name): re-advertising refreshes bindings on
    // the same service entry instead of duplicating it.
    for (BusinessService& existing : b.services)
      if (existing.name == name) return existing.key;
    BusinessService service;
    service.key = next_key("service");
    service.name = name;
    b.services.push_back(service);
    return service.key;
  }
  return make_error("uddi: unknown business " + business_key +
                    " (register the business before its services)");
}

Result<std::string> UddiRegistry::register_binding(const std::string& service_key,
                                                   const std::string& access_point,
                                                   const std::string& tmodel_key,
                                                   const std::string& instance_info,
                                                   double now) {
  std::lock_guard lock(mu_);
  last_known_now_ = std::max(last_known_now_, now);
  const bool tmodel_known =
      std::any_of(tmodels_.begin(), tmodels_.end(),
                  [&](const TModel& t) { return t.key == tmodel_key; });
  if (!tmodel_known) return make_error("uddi: unknown tModel " + tmodel_key);
  for (Business& b : businesses_) {
    for (BusinessService& s : b.services) {
      if (s.key != service_key) continue;
      for (BindingTemplate& existing : s.bindings)
        if (existing.access_point == access_point && existing.tmodel_key == tmodel_key &&
            existing.instance_info == instance_info) {
          // Idempotent re-advertisement doubles as a lease renewal.
          existing.last_heartbeat = std::max(existing.last_heartbeat, last_known_now_);
          return existing.key;
        }
      BindingTemplate binding;
      binding.key = next_key("binding");
      binding.access_point = access_point;
      binding.tmodel_key = tmodel_key;
      binding.instance_info = instance_info;
      binding.lease_seconds = default_lease_seconds_;
      binding.last_heartbeat = last_known_now_;
      s.bindings.push_back(binding);
      return binding.key;
    }
  }
  return make_error("uddi: unknown service " + service_key);
}

util::Status UddiRegistry::remove_binding(const std::string& binding_key) {
  std::lock_guard lock(mu_);
  for (Business& b : businesses_)
    for (BusinessService& s : b.services)
      for (auto it = s.bindings.begin(); it != s.bindings.end(); ++it)
        if (it->key == binding_key) {
          s.bindings.erase(it);
          return {};
        }
  return make_error("uddi: unknown binding " + binding_key);
}

util::Status UddiRegistry::remove_service(const std::string& service_key) {
  std::lock_guard lock(mu_);
  for (Business& b : businesses_)
    for (auto it = b.services.begin(); it != b.services.end(); ++it)
      if (it->key == service_key) {
        b.services.erase(it);
        return {};
      }
  return make_error("uddi: unknown service " + service_key);
}

util::Status UddiRegistry::heartbeat(const std::string& binding_key, double now) {
  std::lock_guard lock(mu_);
  last_known_now_ = std::max(last_known_now_, now);
  for (Business& b : businesses_)
    for (BusinessService& s : b.services)
      for (BindingTemplate& t : s.bindings)
        if (t.key == binding_key) {
          t.last_heartbeat = std::max(t.last_heartbeat, now);
          return {};
        }
  return make_error("uddi: heartbeat for unknown binding " + binding_key +
                    " (advertisement expired or was removed — re-register)");
}

std::vector<BindingTemplate> UddiRegistry::prune_expired(double now) {
  std::lock_guard lock(mu_);
  last_known_now_ = std::max(last_known_now_, now);
  std::vector<BindingTemplate> pruned;
  for (Business& b : businesses_) {
    for (BusinessService& s : b.services) {
      for (auto it = s.bindings.begin(); it != s.bindings.end();) {
        if (it->lease_expired(now)) {
          pruned.push_back(*it);
          it = s.bindings.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return pruned;
}

std::vector<Business> UddiRegistry::find_business(const std::string& name_prefix) const {
  std::lock_guard lock(mu_);
  std::vector<Business> out;
  for (const Business& b : businesses_)
    if (b.name.rfind(name_prefix, 0) == 0) out.push_back(b);
  return out;
}

std::optional<TModel> UddiRegistry::find_tmodel_by_name(const std::string& name) const {
  std::lock_guard lock(mu_);
  for (const TModel& t : tmodels_)
    if (t.name == name) return t;
  return std::nullopt;
}

std::optional<TModel> UddiRegistry::get_tmodel(const std::string& key) const {
  std::lock_guard lock(mu_);
  for (const TModel& t : tmodels_)
    if (t.key == key) return t;
  return std::nullopt;
}

std::vector<BusinessService> UddiRegistry::find_services_by_tmodel(
    const std::string& tmodel_key) const {
  std::lock_guard lock(mu_);
  std::vector<BusinessService> out;
  for (const Business& b : businesses_) {
    for (const BusinessService& s : b.services) {
      const bool match = std::any_of(
          s.bindings.begin(), s.bindings.end(),
          [&](const BindingTemplate& t) { return t.tmodel_key == tmodel_key; });
      if (match) out.push_back(s);
    }
  }
  return out;
}

std::vector<BindingTemplate> UddiRegistry::access_points(const std::string& tmodel_key) const {
  std::lock_guard lock(mu_);
  std::vector<BindingTemplate> out;
  for (const Business& b : businesses_)
    for (const BusinessService& s : b.services)
      for (const BindingTemplate& t : s.bindings)
        if (t.tmodel_key == tmodel_key) out.push_back(t);
  return out;
}

std::vector<Business> UddiRegistry::all_businesses() const {
  std::lock_guard lock(mu_);
  return businesses_;
}

std::vector<TModel> UddiRegistry::all_tmodels() const {
  std::lock_guard lock(mu_);
  return tmodels_;
}

SoapValue to_soap(const BindingTemplate& binding) {
  SoapStruct out;
  out["key"] = binding.key;
  out["accessPoint"] = binding.access_point;
  out["tModelKey"] = binding.tmodel_key;
  out["instanceInfo"] = binding.instance_info;
  out["leaseSeconds"] = binding.lease_seconds;
  return out;
}

SoapValue to_soap(const BusinessService& service) {
  SoapStruct out;
  out["key"] = service.key;
  out["name"] = service.name;
  SoapList bindings;
  for (const BindingTemplate& t : service.bindings) bindings.push_back(to_soap(t));
  out["bindings"] = std::move(bindings);
  return out;
}

SoapValue to_soap(const Business& business) {
  SoapStruct out;
  out["key"] = business.key;
  out["name"] = business.name;
  SoapList services;
  for (const BusinessService& s : business.services) services.push_back(to_soap(s));
  out["services"] = std::move(services);
  return out;
}

Result<SoapValue> UddiRegistry::dispatch(const std::string& method, const SoapList& args) {
  const auto arg_str = [&](size_t i) {
    return i < args.size() ? args[i].as_string() : std::string{};
  };
  const auto arg_num = [&](size_t i) {
    return i < args.size() ? args[i].as_double(0.0) : 0.0;
  };
  if (method == "registerBusiness") return SoapValue{register_business(arg_str(0))};
  if (method == "registerService") {
    auto key = register_service(arg_str(0), arg_str(1));
    if (!key.ok()) return make_error(key.error());
    return SoapValue{std::move(key).take()};
  }
  if (method == "registerBinding") {
    auto key = register_binding(arg_str(0), arg_str(1), arg_str(2), arg_str(3), arg_num(4));
    if (!key.ok()) return make_error(key.error());
    return SoapValue{std::move(key).take()};
  }
  if (method == "removeBinding") {
    const auto removed = remove_binding(arg_str(0));
    if (!removed.ok()) return make_error(removed.error());
    return SoapValue{true};
  }
  if (method == "heartbeat") {
    const auto renewed = heartbeat(arg_str(0), arg_num(1));
    if (!renewed.ok()) return make_error(renewed.error());
    return SoapValue{true};
  }
  if (method == "pruneExpired") {
    SoapList out;
    for (const BindingTemplate& t : prune_expired(arg_num(0))) out.push_back(to_soap(t));
    return SoapValue{std::move(out)};
  }
  if (method == "findBusiness") {
    SoapList out;
    for (const Business& b : find_business(arg_str(0))) out.push_back(to_soap(b));
    return SoapValue{std::move(out)};
  }
  if (method == "findTModelByName") {
    const auto t = find_tmodel_by_name(arg_str(0));
    if (!t.has_value()) return make_error("uddi: no tModel named " + arg_str(0));
    SoapStruct out;
    out["key"] = t->key;
    out["name"] = t->name;
    out["wsdl"] = t->wsdl;
    return SoapValue{std::move(out)};
  }
  if (method == "findServicesByTModel") {
    SoapList out;
    for (const BusinessService& s : find_services_by_tmodel(arg_str(0))) out.push_back(to_soap(s));
    return SoapValue{std::move(out)};
  }
  if (method == "accessPoints") {
    SoapList out;
    for (const BindingTemplate& t : access_points(arg_str(0))) out.push_back(to_soap(t));
    return SoapValue{std::move(out)};
  }
  return make_error("uddi: unknown method " + method);
}

}  // namespace rave::services

// UDDI-like service registry. RAVE advertises data and render services
// through UDDI so that "remote users [can] find our publicly-available
// resources and connect automatically" (§3.2.2), and the data service uses
// the registry to *recruit* under-utilised render services when a session
// is overloaded (§3.2.7). The model follows UDDI v2/v3 structure:
// businesses own services, services carry binding templates (access
// points), and technical models (tModels) identify the API via WSDL.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/endpoint.hpp"
#include "services/soap.hpp"
#include "services/wsdl.hpp"
#include "util/result.hpp"

namespace rave::services {

struct TModel {
  std::string key;        // "uddi:tmodel:<n>"
  std::string name;       // e.g. "RaveRenderService"
  std::string wsdl;       // overview document
  std::string signature;  // canonical API signature
};

struct BindingTemplate {
  std::string key;
  std::string access_point;  // transport address, e.g. "tcp:127.0.0.1:9000" or "inproc:tower/render0"
  std::string tmodel_key;
  std::string instance_info;  // free-form, e.g. dataset name ("Skull-internal")
  // Lease state: the advertisement stays visible while heartbeats keep
  // arriving within lease_seconds; 0 = no lease (never expires). The
  // paper's registry never forgot a dead service — leases fix that.
  double lease_seconds = 0.0;
  double last_heartbeat = 0.0;

  [[nodiscard]] bool lease_expired(double now) const {
    return lease_seconds > 0.0 && now - last_heartbeat > lease_seconds;
  }

  // The access point as a parsed net::Endpoint. Registration stays
  // lenient (the registry is a metadata store and tests advertise
  // placeholder strings); dialing code that needs host/port calls this
  // and gets the parse error with the offending string on failure.
  [[nodiscard]] util::Result<net::Endpoint> endpoint() const {
    return net::Endpoint::parse(access_point);
  }
};

struct BusinessService {
  std::string key;
  std::string name;
  std::vector<BindingTemplate> bindings;
};

struct Business {
  std::string key;
  std::string name;  // host/organisation ("tower", "adrenochrome")
  std::vector<BusinessService> services;
};

class UddiRegistry {
 public:
  // Publication API. Failures (unknown keys) carry the paper-mandated
  // explanatory message instead of silently returning "" or dropping the
  // request on the floor.
  std::string register_tmodel(const ServiceDescriptor& descriptor);
  std::string register_business(const std::string& name);
  util::Result<std::string> register_service(const std::string& business_key,
                                             const std::string& name);
  // `now` stamps the binding's lease; re-advertising an identical binding
  // renews it (idempotent heartbeat). Callers without a clock may omit it.
  util::Result<std::string> register_binding(const std::string& service_key,
                                             const std::string& access_point,
                                             const std::string& tmodel_key,
                                             const std::string& instance_info = "",
                                             double now = 0.0);
  util::Status remove_binding(const std::string& binding_key);
  util::Status remove_service(const std::string& service_key);

  // --- leases (failure detection, §3.2.7) ---------------------------------
  // Bindings registered while a default lease is set expire unless
  // renewed; `now` comes from the caller's clock so expiry is
  // deterministic under virtual time. 0 disables leasing (the default).
  void set_default_lease(double lease_seconds) { default_lease_seconds_ = lease_seconds; }
  [[nodiscard]] double default_lease() const { return default_lease_seconds_; }
  // Renew one advertisement's lease.
  util::Status heartbeat(const std::string& binding_key, double now);
  // Drop every binding whose lease lapsed; returns what was pruned so the
  // caller can plan recovery (e.g. migrate the dead service's workload).
  std::vector<BindingTemplate> prune_expired(double now);

  // Inquiry API.
  [[nodiscard]] std::vector<Business> find_business(const std::string& name_prefix) const;
  [[nodiscard]] std::optional<TModel> find_tmodel_by_name(const std::string& name) const;
  [[nodiscard]] std::optional<TModel> get_tmodel(const std::string& key) const;
  [[nodiscard]] std::vector<BusinessService> find_services_by_tmodel(
      const std::string& tmodel_key) const;
  // The fast "scan for access points" the paper times at ~0.7 s: one
  // round-trip returning just the access points bound to a tModel.
  [[nodiscard]] std::vector<BindingTemplate> access_points(const std::string& tmodel_key) const;

  [[nodiscard]] std::vector<Business> all_businesses() const;
  [[nodiscard]] std::vector<TModel> all_tmodels() const;

  // SOAP surface: dispatch a call addressed to the "uddi" endpoint, so the
  // registry can be hosted in a ServiceContainer like any other service.
  util::Result<SoapValue> dispatch(const std::string& method, const SoapList& args);

 private:
  std::string next_key(const char* kind);

  mutable std::mutex mu_;
  std::vector<Business> businesses_;
  std::vector<TModel> tmodels_;
  uint64_t next_id_ = 1;
  double default_lease_seconds_ = 0.0;
  double last_known_now_ = 0.0;  // latest `now` seen; stamps new bindings
};

// Encode registry structures as SOAP values (used by dispatch and by the
// registry-browser GUI reproduction).
SoapValue to_soap(const BindingTemplate& binding);
SoapValue to_soap(const BusinessService& service);
SoapValue to_soap(const Business& business);

}  // namespace rave::services

#include "services/soap.hpp"

#include <charconv>

#include "util/serial.hpp"

namespace rave::services {

using util::make_error;
using util::Result;

bool SoapValue::as_bool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  if (const int64_t* i = std::get_if<int64_t>(&value_)) return *i != 0;
  return fallback;
}

int64_t SoapValue::as_int(int64_t fallback) const {
  if (const int64_t* i = std::get_if<int64_t>(&value_)) return *i;
  if (const double* d = std::get_if<double>(&value_)) return static_cast<int64_t>(*d);
  if (const bool* b = std::get_if<bool>(&value_)) return *b ? 1 : 0;
  return fallback;
}

double SoapValue::as_double(double fallback) const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&value_)) return static_cast<double>(*i);
  return fallback;
}

std::string SoapValue::as_string(const std::string& fallback) const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  return fallback;
}

std::vector<uint8_t> SoapValue::as_bytes() const {
  if (const auto* b = std::get_if<std::vector<uint8_t>>(&value_)) return *b;
  return {};
}

SoapValue SoapValue::field(const std::string& key) const {
  if (const SoapStruct* s = as_struct()) {
    auto it = s->find(key);
    if (it != s->end()) return it->second;
  }
  return {};
}

XmlNode SoapValue::to_xml(const std::string& element_name) const {
  XmlNode node(element_name);
  if (std::holds_alternative<std::monostate>(value_)) {
    node.attributes["xsi:type"] = "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    node.attributes["xsi:type"] = "xsd:boolean";
    node.text = *b ? "true" : "false";
  } else if (const int64_t* i = std::get_if<int64_t>(&value_)) {
    node.attributes["xsi:type"] = "xsd:long";
    node.text = std::to_string(*i);
  } else if (const double* d = std::get_if<double>(&value_)) {
    node.attributes["xsi:type"] = "xsd:double";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    node.text = buf;
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    node.attributes["xsi:type"] = "xsd:string";
    node.text = *s;
  } else if (const auto* bytes = std::get_if<std::vector<uint8_t>>(&value_)) {
    node.attributes["xsi:type"] = "xsd:base64Binary";
    node.text = util::base64_encode(*bytes);
  } else if (const SoapList* list = std::get_if<SoapList>(&value_)) {
    node.attributes["xsi:type"] = "soapenc:Array";
    for (const SoapValue& item : *list) node.children.push_back(item.to_xml("item"));
  } else if (const SoapStruct* st = std::get_if<SoapStruct>(&value_)) {
    node.attributes["xsi:type"] = "soapenc:Struct";
    for (const auto& [k, v] : *st) {
      XmlNode member = v.to_xml("member");
      member.attributes["name"] = k;
      node.children.push_back(std::move(member));
    }
  }
  return node;
}

Result<SoapValue> SoapValue::from_xml(const XmlNode& node) {
  const std::string type = node.attribute("xsi:type", "xsd:string");
  if (type == "null") return SoapValue{};
  if (type == "xsd:boolean") return SoapValue{node.text == "true" || node.text == "1"};
  if (type == "xsd:long" || type == "xsd:int") {
    int64_t v = 0;
    const auto [p, ec] = std::from_chars(node.text.data(), node.text.data() + node.text.size(), v);
    if (ec != std::errc{}) return make_error("soap: bad integer '" + node.text + "'");
    return SoapValue{v};
  }
  if (type == "xsd:double" || type == "xsd:float") {
    try {
      return SoapValue{std::stod(node.text)};
    } catch (...) {
      return make_error("soap: bad double '" + node.text + "'");
    }
  }
  if (type == "xsd:string") return SoapValue{node.text};
  if (type == "xsd:base64Binary") {
    auto bytes = util::base64_decode(node.text);
    if (!bytes.ok()) return make_error("soap: " + bytes.error());
    return SoapValue{std::move(bytes).take()};
  }
  if (type == "soapenc:Array") {
    SoapList list;
    for (const XmlNode& child : node.children) {
      auto item = from_xml(child);
      if (!item.ok()) return item;
      list.push_back(std::move(item).take());
    }
    return SoapValue{std::move(list)};
  }
  if (type == "soapenc:Struct") {
    SoapStruct st;
    for (const XmlNode& child : node.children) {
      auto item = from_xml(child);
      if (!item.ok()) return item;
      st[child.attribute("name")] = std::move(item).take();
    }
    return SoapValue{std::move(st)};
  }
  return make_error("soap: unknown xsi:type " + type);
}

namespace {
XmlNode make_envelope() {
  XmlNode env("soap:Envelope");
  env.attributes["xmlns:soap"] = "http://schemas.xmlsoap.org/soap/envelope/";
  env.attributes["xmlns:xsd"] = "http://www.w3.org/2001/XMLSchema";
  env.attributes["xmlns:xsi"] = "http://www.w3.org/2001/XMLSchema-instance";
  env.attributes["xmlns:soapenc"] = "http://schemas.xmlsoap.org/soap/encoding/";
  env.attributes["xmlns:rave"] = "http://rave.cs.cf.ac.uk/services";
  return env;
}

const XmlNode* find_body_payload(const XmlNode& root, const std::string& payload_name,
                                 std::string& error) {
  if (root.name != "soap:Envelope") {
    error = "not a SOAP envelope";
    return nullptr;
  }
  const XmlNode* body = root.find_child("soap:Body");
  if (body == nullptr) {
    error = "missing soap:Body";
    return nullptr;
  }
  const XmlNode* payload = body->find_child(payload_name);
  if (payload == nullptr) error = "missing " + payload_name;
  return payload;
}
}  // namespace

std::string encode_call(const SoapCall& call) {
  XmlNode env = make_envelope();
  XmlNode& body = env.add_child("soap:Body");
  XmlNode& rpc = body.add_child("rave:Call");
  rpc.attributes["service"] = call.service;
  rpc.attributes["method"] = call.method;
  rpc.attributes["id"] = std::to_string(call.call_id);
  for (const SoapValue& arg : call.args) rpc.children.push_back(arg.to_xml("arg"));
  return to_xml(env);
}

Result<SoapCall> decode_call(const std::string& xml) {
  auto doc = parse_xml(xml);
  if (!doc.ok()) return make_error(doc.error());
  std::string error;
  const XmlNode* rpc = find_body_payload(doc.value(), "rave:Call", error);
  if (rpc == nullptr) return make_error("soap: " + error);
  SoapCall call;
  call.service = rpc->attribute("service");
  call.method = rpc->attribute("method");
  call.call_id = std::strtoull(rpc->attribute("id", "0").c_str(), nullptr, 10);
  for (const XmlNode* arg : rpc->find_children("arg")) {
    auto value = SoapValue::from_xml(*arg);
    if (!value.ok()) return make_error(value.error());
    call.args.push_back(std::move(value).take());
  }
  return call;
}

std::string encode_response(const SoapResponse& response) {
  XmlNode env = make_envelope();
  XmlNode& body = env.add_child("soap:Body");
  if (response.is_fault) {
    XmlNode& fault = body.add_child("soap:Fault");
    fault.attributes["id"] = std::to_string(response.call_id);
    fault.add_child("faultstring").text = response.fault_message;
  } else {
    XmlNode& resp = body.add_child("rave:Response");
    resp.attributes["id"] = std::to_string(response.call_id);
    resp.children.push_back(response.result.to_xml("result"));
  }
  return to_xml(env);
}

Result<SoapResponse> decode_response(const std::string& xml) {
  auto doc = parse_xml(xml);
  if (!doc.ok()) return make_error(doc.error());
  SoapResponse out;
  std::string error;
  if (const XmlNode* body = doc.value().find_child("soap:Body")) {
    if (const XmlNode* fault = body->find_child("soap:Fault")) {
      out.is_fault = true;
      out.call_id = std::strtoull(fault->attribute("id", "0").c_str(), nullptr, 10);
      if (const XmlNode* str = fault->find_child("faultstring")) out.fault_message = str->text;
      return out;
    }
  }
  const XmlNode* resp = find_body_payload(doc.value(), "rave:Response", error);
  if (resp == nullptr) return make_error("soap: " + error);
  out.call_id = std::strtoull(resp->attribute("id", "0").c_str(), nullptr, 10);
  if (const XmlNode* result = resp->find_child("result")) {
    auto value = SoapValue::from_xml(*result);
    if (!value.ok()) return make_error(value.error());
    out.result = std::move(value).take();
  }
  return out;
}

}  // namespace rave::services

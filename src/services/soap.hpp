// SOAP-style RPC envelopes. Calls carry typed arguments as XML inside an
// Envelope/Body, exactly the shape Apache Axis put on the wire for the
// paper's services; binary values are base64-encoded ("not suited to large
// data transmission ... due to the size of the SOAP packets related to the
// size of the data, and the time required to marshall/demarshall" — §4.3,
// which ablation_soap_vs_socket quantifies).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "services/xml.hpp"
#include "util/result.hpp"

namespace rave::services {

class SoapValue;
using SoapList = std::vector<SoapValue>;
using SoapStruct = std::map<std::string, SoapValue>;

class SoapValue {
 public:
  using Storage = std::variant<std::monostate, bool, int64_t, double, std::string,
                               std::vector<uint8_t>, SoapList, SoapStruct>;

  SoapValue() = default;
  SoapValue(bool v) : value_(v) {}                        // NOLINT
  SoapValue(int v) : value_(static_cast<int64_t>(v)) {}   // NOLINT
  SoapValue(int64_t v) : value_(v) {}                     // NOLINT
  SoapValue(uint64_t v) : value_(static_cast<int64_t>(v)) {}  // NOLINT
  SoapValue(double v) : value_(v) {}                      // NOLINT
  SoapValue(const char* v) : value_(std::string(v)) {}    // NOLINT
  SoapValue(std::string v) : value_(std::move(v)) {}      // NOLINT
  SoapValue(std::vector<uint8_t> v) : value_(std::move(v)) {}  // NOLINT
  SoapValue(SoapList v) : value_(std::move(v)) {}         // NOLINT
  SoapValue(SoapStruct v) : value_(std::move(v)) {}       // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] int64_t as_int(int64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::string as_string(const std::string& fallback = "") const;
  [[nodiscard]] std::vector<uint8_t> as_bytes() const;
  // Ref-qualified: calling these on a temporary (e.g. `x.field("k").as_list()`)
  // would return a pointer into a dead object, so it is compile-time
  // rejected — bind the field to a named SoapValue first.
  [[nodiscard]] const SoapList* as_list() const& { return std::get_if<SoapList>(&value_); }
  const SoapList* as_list() const&& = delete;
  [[nodiscard]] const SoapStruct* as_struct() const& { return std::get_if<SoapStruct>(&value_); }
  const SoapStruct* as_struct() const&& = delete;

  // Struct field access (null value when absent or not a struct).
  [[nodiscard]] SoapValue field(const std::string& key) const;

  [[nodiscard]] const Storage& storage() const { return value_; }

  // Encode as a <value> element; decode from one.
  [[nodiscard]] XmlNode to_xml(const std::string& element_name = "value") const;
  static util::Result<SoapValue> from_xml(const XmlNode& node);

 private:
  Storage value_;
};

struct SoapCall {
  std::string service;  // endpoint name (e.g. "uddi", "data:Skull")
  std::string method;
  uint64_t call_id = 0;
  SoapList args;
};

struct SoapResponse {
  uint64_t call_id = 0;
  bool is_fault = false;
  std::string fault_message;
  SoapValue result;
};

// Envelope encode/decode (full XML round trip; the XML byte count is what
// the SOAP-overhead ablation measures).
std::string encode_call(const SoapCall& call);
util::Result<SoapCall> decode_call(const std::string& xml);

std::string encode_response(const SoapResponse& response);
util::Result<SoapResponse> decode_response(const std::string& xml);

// net::Message types carrying SOAP XML.
constexpr uint16_t kSoapRequestType = 0x0001;
constexpr uint16_t kSoapResponseType = 0x0002;

}  // namespace rave::services

#include "services/wsdl.hpp"

#include <algorithm>
#include <sstream>

namespace rave::services {

using util::make_error;
using util::Result;

std::string to_wsdl(const ServiceDescriptor& descriptor) {
  XmlNode defs("wsdl:definitions");
  defs.attributes["xmlns:wsdl"] = "http://schemas.xmlsoap.org/wsdl/";
  defs.attributes["xmlns:xsd"] = "http://www.w3.org/2001/XMLSchema";
  defs.attributes["name"] = descriptor.name;
  defs.attributes["targetNamespace"] = descriptor.target_namespace;

  // Messages.
  for (const OperationSpec& op : descriptor.operations) {
    XmlNode& request = defs.add_child("wsdl:message");
    request.attributes["name"] = op.name + "Request";
    for (size_t i = 0; i < op.input_types.size(); ++i) {
      XmlNode& part = request.add_child("wsdl:part");
      part.attributes["name"] = "arg" + std::to_string(i);
      part.attributes["type"] = op.input_types[i];
    }
    XmlNode& response = defs.add_child("wsdl:message");
    response.attributes["name"] = op.name + "Response";
    XmlNode& part = response.add_child("wsdl:part");
    part.attributes["name"] = "result";
    part.attributes["type"] = op.output_type;
  }

  // Port type.
  XmlNode& port = defs.add_child("wsdl:portType");
  port.attributes["name"] = descriptor.name + "PortType";
  for (const OperationSpec& op : descriptor.operations) {
    XmlNode& operation = port.add_child("wsdl:operation");
    operation.attributes["name"] = op.name;
    operation.add_child("wsdl:input").attributes["message"] = op.name + "Request";
    operation.add_child("wsdl:output").attributes["message"] = op.name + "Response";
  }
  return to_xml(defs, true);
}

Result<ServiceDescriptor> parse_wsdl(const std::string& xml) {
  auto doc = parse_xml(xml);
  if (!doc.ok()) return make_error(doc.error());
  const XmlNode& defs = doc.value();
  if (defs.name != "wsdl:definitions") return make_error("wsdl: not a definitions document");
  ServiceDescriptor out;
  out.name = defs.attribute("name");
  out.target_namespace = defs.attribute("targetNamespace", out.target_namespace);

  // Collect messages: name -> part types.
  std::map<std::string, std::vector<std::string>> messages;
  for (const XmlNode* msg : defs.find_children("wsdl:message")) {
    std::vector<std::string> parts;
    for (const XmlNode* part : msg->find_children("wsdl:part"))
      parts.push_back(part->attribute("type"));
    messages[msg->attribute("name")] = std::move(parts);
  }

  const XmlNode* port = defs.find_child("wsdl:portType");
  if (port == nullptr) return make_error("wsdl: missing portType");
  for (const XmlNode* op_node : port->find_children("wsdl:operation")) {
    OperationSpec op;
    op.name = op_node->attribute("name");
    if (const XmlNode* input = op_node->find_child("wsdl:input")) {
      auto it = messages.find(input->attribute("message"));
      if (it != messages.end()) op.input_types = it->second;
    }
    if (const XmlNode* output = op_node->find_child("wsdl:output")) {
      auto it = messages.find(output->attribute("message"));
      if (it != messages.end() && !it->second.empty()) op.output_type = it->second.front();
    }
    out.operations.push_back(std::move(op));
  }
  return out;
}

std::string api_signature(const ServiceDescriptor& descriptor) {
  std::vector<std::string> ops;
  for (const OperationSpec& op : descriptor.operations) {
    std::ostringstream sig;
    sig << op.name << '(';
    for (size_t i = 0; i < op.input_types.size(); ++i) {
      if (i != 0) sig << ',';
      sig << op.input_types[i];
    }
    sig << ")->" << op.output_type;
    ops.push_back(sig.str());
  }
  std::sort(ops.begin(), ops.end());
  std::string out = descriptor.target_namespace + "|";
  for (const std::string& op : ops) out += op + ";";
  return out;
}

ServiceDescriptor data_service_descriptor() {
  ServiceDescriptor d;
  d.name = "RaveDataService";
  d.operations = {
      {"createSession", {"xsd:string", "xsd:string"}, "xsd:string"},
      {"listSessions", {}, "soapenc:Array"},
      {"subscribe", {"xsd:string", "xsd:string"}, "xsd:string"},
      {"describeSession", {"xsd:string"}, "soapenc:Struct"},
      {"querySessionLoad", {"xsd:string"}, "soapenc:Struct"},
  };
  return d;
}

ServiceDescriptor render_service_descriptor() {
  ServiceDescriptor d;
  d.name = "RaveRenderService";
  d.operations = {
      {"createInstance", {"xsd:string"}, "xsd:string"},
      {"listInstances", {}, "soapenc:Array"},
      {"queryCapacity", {}, "soapenc:Struct"},
      {"connectThinClient", {"xsd:string", "xsd:string"}, "xsd:string"},
      {"requestTileAssist", {"xsd:string", "xsd:string"}, "xsd:string"},
  };
  return d;
}

}  // namespace rave::services

// WSDL documents. Each RAVE service type advertises its API as a WSDL
// document registered as a UDDI "technical model"; any two services
// adhering to the same technical model are interchangeable ("if any
// services are advertised as adhering to this technical model, then we
// know they will have the same API and underlying behaviour" — §4.3).
#pragma once

#include <string>
#include <vector>

#include "services/xml.hpp"
#include "util/result.hpp"

namespace rave::services {

struct OperationSpec {
  std::string name;
  std::vector<std::string> input_types;  // xsd type names
  std::string output_type = "xsd:string";
};

struct ServiceDescriptor {
  std::string name;
  std::string target_namespace = "http://rave.cs.cf.ac.uk/services";
  std::vector<OperationSpec> operations;
};

// Render a descriptor to a WSDL 1.1-style document.
std::string to_wsdl(const ServiceDescriptor& descriptor);

// Parse back (only the subset to_wsdl emits).
util::Result<ServiceDescriptor> parse_wsdl(const std::string& xml);

// Canonical API signature: equal signatures mean the same technical model,
// regardless of operation ordering.
std::string api_signature(const ServiceDescriptor& descriptor);

// The two RAVE technical models (paper §4.3: "we have two technical
// models, one for the data service and one for the render service").
ServiceDescriptor data_service_descriptor();
ServiceDescriptor render_service_descriptor();

}  // namespace rave::services

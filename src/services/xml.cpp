#include "services/xml.hpp"

#include <cctype>
#include <sstream>

namespace rave::services {

using util::make_error;
using util::Result;

const XmlNode* XmlNode::find_child(const std::string& child_name) const {
  for (const XmlNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::find_children(const std::string& child_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children)
    if (c.name == child_name) out.push_back(&c);
  return out;
}

std::string XmlNode::attribute(const std::string& key, std::string fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? std::move(fallback) : it->second;
}

uint64_t XmlNode::field_count() const {
  uint64_t count = 1 + attributes.size() + (text.empty() ? 0 : 1);
  for (const XmlNode& c : children) count += c.field_count();
  return count;
}

std::string xml_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {
void write_node(std::ostringstream& out, const XmlNode& node, bool pretty, int depth) {
  const std::string indent = pretty ? std::string(static_cast<size_t>(depth) * 2, ' ') : "";
  const std::string newline = pretty ? "\n" : "";
  out << indent << '<' << node.name;
  for (const auto& [k, v] : node.attributes) out << ' ' << k << "=\"" << xml_escape(v) << '"';
  if (node.children.empty() && node.text.empty()) {
    out << "/>" << newline;
    return;
  }
  out << '>';
  if (!node.text.empty()) out << xml_escape(node.text);
  if (!node.children.empty()) {
    out << newline;
    for (const XmlNode& c : node.children) write_node(out, c, pretty, depth + 1);
    out << indent;
  }
  out << "</" << node.name << '>' << newline;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<XmlNode> parse() {
    skip_prolog();
    XmlNode root;
    if (!parse_element(root)) return make_error("xml: " + error_);
    return root;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  bool skip_comment_or_pi() {
    if (text_.compare(pos_, 4, "<!--") == 0) {
      const size_t end = text_.find("-->", pos_ + 4);
      pos_ = end == std::string::npos ? text_.size() : end + 3;
      return true;
    }
    if (text_.compare(pos_, 2, "<?") == 0) {
      const size_t end = text_.find("?>", pos_ + 2);
      pos_ = end == std::string::npos ? text_.size() : end + 2;
      return true;
    }
    if (text_.compare(pos_, 2, "<!") == 0) {  // DOCTYPE etc.
      const size_t end = text_.find('>', pos_ + 2);
      pos_ = end == std::string::npos ? text_.size() : end + 1;
      return true;
    }
    return false;
  }

  void skip_prolog() {
    for (;;) {
      skip_whitespace();
      if (pos_ < text_.size() && text_[pos_] == '<' && skip_comment_or_pi()) continue;
      return;
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == ':' || c == '_' || c == '-' ||
           c == '.';
  }

  std::string parse_name() {
    const size_t start = pos_;
    while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  static std::string unescape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '&') {
        out.push_back(s[i]);
        continue;
      }
      if (s.compare(i, 4, "&lt;") == 0) { out.push_back('<'); i += 3; }
      else if (s.compare(i, 4, "&gt;") == 0) { out.push_back('>'); i += 3; }
      else if (s.compare(i, 5, "&amp;") == 0) { out.push_back('&'); i += 4; }
      else if (s.compare(i, 6, "&quot;") == 0) { out.push_back('"'); i += 5; }
      else if (s.compare(i, 6, "&apos;") == 0) { out.push_back('\''); i += 5; }
      else out.push_back(s[i]);
    }
    return out;
  }

  bool fail(std::string message) {
    error_ = std::move(message) + " at offset " + std::to_string(pos_);
    return false;
  }

  bool parse_element(XmlNode& node) {
    skip_whitespace();
    if (pos_ >= text_.size() || text_[pos_] != '<') return fail("expected '<'");
    ++pos_;
    node.name = parse_name();
    if (node.name.empty()) return fail("expected element name");
    // Attributes.
    for (;;) {
      skip_whitespace();
      if (pos_ >= text_.size()) return fail("unterminated tag");
      if (text_[pos_] == '/') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          return true;  // self-closing
        }
        return fail("bad '/'");
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      if (key.empty()) return fail("expected attribute name");
      skip_whitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') return fail("expected '='");
      ++pos_;
      skip_whitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\''))
        return fail("expected quoted attribute value");
      const char quote = text_[pos_++];
      const size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) return fail("unterminated attribute value");
      node.attributes[key] = unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content.
    for (;;) {
      if (pos_ >= text_.size()) return fail("unterminated element " + node.name);
      if (text_[pos_] == '<') {
        if (text_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          const std::string close = parse_name();
          if (close != node.name) return fail("mismatched close tag " + close);
          skip_whitespace();
          if (pos_ >= text_.size() || text_[pos_] != '>') return fail("expected '>'");
          ++pos_;
          return true;
        }
        if (skip_comment_or_pi()) continue;
        XmlNode child;
        if (!parse_element(child)) return false;
        node.children.push_back(std::move(child));
      } else {
        const size_t end = text_.find('<', pos_);
        const std::string chunk =
            text_.substr(pos_, end == std::string::npos ? std::string::npos : end - pos_);
        // Trim pure-whitespace runs between elements, keep real text.
        const std::string unescaped = unescape(chunk);
        bool all_space = true;
        for (char c : unescaped)
          if (!std::isspace(static_cast<unsigned char>(c))) { all_space = false; break; }
        if (!all_space) node.text += unescaped;
        pos_ = end == std::string::npos ? text_.size() : end;
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};
}  // namespace

std::string to_xml(const XmlNode& root, bool pretty) {
  std::ostringstream out;
  write_node(out, root, pretty, 0);
  return out.str();
}

Result<XmlNode> parse_xml(const std::string& text) { return Parser(text).parse(); }

}  // namespace rave::services

// Minimal XML document model, writer and parser — the plain-text substrate
// for SOAP envelopes and WSDL documents (paper §4.3: procedure arguments
// and results travel "in XML format ... transmitted as plain text", which
// is also why the system backs off to raw sockets for bulk data).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace rave::services {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  // concatenated character data
  std::vector<XmlNode> children;

  XmlNode() = default;
  explicit XmlNode(std::string n) : name(std::move(n)) {}

  XmlNode& add_child(std::string child_name) {
    children.emplace_back(std::move(child_name));
    return children.back();
  }

  [[nodiscard]] const XmlNode* find_child(const std::string& child_name) const;
  [[nodiscard]] std::vector<const XmlNode*> find_children(const std::string& child_name) const;
  [[nodiscard]] std::string attribute(const std::string& key, std::string fallback = "") const;

  // Total elements + attributes + text nodes — the "fields" a reflective
  // marshaller would touch (Table 5 cost model).
  [[nodiscard]] uint64_t field_count() const;
};

std::string xml_escape(const std::string& text);

// Serialize a document (single root element).
std::string to_xml(const XmlNode& root, bool pretty = false);

// Parse a document; returns the root element. Supports elements,
// attributes, character data, self-closing tags, comments, XML
// declarations and the five standard entities.
util::Result<XmlNode> parse_xml(const std::string& text);

}  // namespace rave::services

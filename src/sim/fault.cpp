#include "sim/fault.hpp"

namespace rave::sim {

void KillSwitch::kill() {
  killed_.store(true, std::memory_order_release);
  std::vector<std::weak_ptr<net::Channel>> doomed;
  {
    std::lock_guard lock(mu_);
    doomed.swap(channels_);
  }
  for (auto& weak : doomed)
    if (auto channel = weak.lock()) channel->close();
}

void KillSwitch::attach(const net::ChannelPtr& channel) {
  if (killed()) {
    channel->close();
    return;
  }
  std::lock_guard lock(mu_);
  channels_.push_back(channel);
}

size_t KillSwitch::attached_count() const {
  std::lock_guard lock(mu_);
  return channels_.size();
}

namespace {

class FaultyChannel final : public net::Channel {
 public:
  FaultyChannel(net::ChannelPtr inner, KillSwitchPtr kill_switch, FaultPlan plan)
      : inner_(std::move(inner)), kill_switch_(std::move(kill_switch)), plan_(plan) {}

  util::Status send(net::Message message) override {
    std::lock_guard lock(mu_);
    if (dead()) {
      inner_->close();
      return util::make_error("fault: link is dead (killed or byte budget exhausted)");
    }
    ++messages_sent_;
    if (plan_.drop_every_n > 0 && messages_sent_ % plan_.drop_every_n == 0)
      return {};  // silently lost in transit — the sender cannot tell
    bytes_sent_ += message.wire_size();
    util::Status sent = inner_->send(std::move(message));
    // The byte budget covers this message, then the link dies.
    if (plan_.fail_after_bytes > 0 && bytes_sent_ >= plan_.fail_after_bytes) {
      exhausted_ = true;
      inner_->close();
    }
    return sent;
  }

  util::Result<net::Message> receive_result(double timeout_seconds) override {
    if (dead_unlocked())
      return util::make_error("fault: link is dead (killed or byte budget exhausted)");
    return inner_->receive_result(timeout_seconds);
  }

  void close() override { inner_->close(); }

  [[nodiscard]] bool is_open() const override {
    if (dead_unlocked()) return false;
    return inner_->is_open();
  }

  [[nodiscard]] net::ChannelStats stats() const override { return inner_->stats(); }

 private:
  // mu_ must be held.
  [[nodiscard]] bool dead() const {
    return exhausted_ || (kill_switch_ && kill_switch_->killed());
  }
  [[nodiscard]] bool dead_unlocked() const {
    std::lock_guard lock(mu_);
    return dead();
  }

  net::ChannelPtr inner_;
  KillSwitchPtr kill_switch_;
  FaultPlan plan_;
  mutable std::mutex mu_;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  bool exhausted_ = false;
};

}  // namespace

net::ChannelPtr wrap_faulty(net::ChannelPtr inner, KillSwitchPtr kill_switch, FaultPlan plan) {
  if (kill_switch) kill_switch->attach(inner);
  return std::make_shared<FaultyChannel>(std::move(inner), std::move(kill_switch), plan);
}

}  // namespace rave::sim

// Fault injection for the simulated testbed. Wraps any net::Channel (an
// in-process pair, a SimulatedLink, a TCP channel) with a failure model
// so every recovery path in the service fabric can be exercised in ctest
// under virtual time:
//
//  * KillSwitch — shared "service died" signal. All channels attached to
//    one switch fail simultaneously when kill() fires, which is what a
//    crashed render service looks like to its peers (paper §3.2.7's
//    "conditions change on the remote service").
//  * FaultPlan — deterministic link degradation: a link that dies after
//    carrying N bytes, or silently drops every K-th message.
//
// Wrapped channels report closed once the fault has fired, so existing
// is_open()/Result-based error paths observe failures with no special
// cases.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "net/channel.hpp"

namespace rave::sim {

// Shared kill signal. kill() closes every attached channel (both
// directions) and makes later wrap attempts fail immediately.
class KillSwitch {
 public:
  // Trip the switch: every attached channel closes now.
  void kill();
  [[nodiscard]] bool killed() const { return killed_.load(std::memory_order_acquire); }

  // Attach a live channel so kill() can close it. Attaching to an
  // already-tripped switch closes the channel immediately.
  void attach(const net::ChannelPtr& channel);

  [[nodiscard]] size_t attached_count() const;

 private:
  std::atomic<bool> killed_{false};
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<net::Channel>> channels_;
};

using KillSwitchPtr = std::shared_ptr<KillSwitch>;

struct FaultPlan {
  // Link dies (permanently, both directions) after this many payload
  // bytes have been sent through the wrapper. 0 = no byte limit.
  uint64_t fail_after_bytes = 0;
  // Drop (silently lose) every `drop_every_n`-th sent message; 0 = never.
  // Models lossy links without killing them.
  uint64_t drop_every_n = 0;
};

// Wrap `inner` so the fault plan and/or kill switch govern it. Either
// argument may be empty/default for a plan-only or switch-only wrapper.
net::ChannelPtr wrap_faulty(net::ChannelPtr inner, KillSwitchPtr kill_switch,
                            FaultPlan plan = {});

}  // namespace rave::sim

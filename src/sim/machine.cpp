#include "sim/machine.hpp"

namespace rave::sim {

// Calibration notes: rate parameters are fitted to the ratios the paper
// publishes, not to absolute 2004 hardware specs.
//  - centrino tri_rate is fixed by Table 2's render column (0.83 M tris in
//    ~0.09 s, 2.8 M in ~0.35 s, off-screen);
//  - off_copy_rate / off_fixed_latency reproduce Table 3/4's off-screen
//    percentages (sequential pays copy+latency per frame, interleaving
//    pipelines them);
//  - v880z's off_*_factor encodes the software-fallback the paper suspects
//    for XVR-4000 off-screen rendering (§5.4);
//  - marshall_fields_per_sec reproduces Table 5's introspective bootstrap
//    (3.3 M scene fields for the 20 MB hand in ~60 s).

MachineProfile onyx3000() {
  MachineProfile m;
  m.name = "onyx";
  m.cpu = "32x MIPS R12000";
  m.gpu = "3x InfiniteReality";
  m.tri_rate = 13e6;
  m.fill_rate = 800e6;
  m.frame_overhead = 0.0004;
  m.off_copy_rate = 30e6;
  m.off_fixed_latency = 0.005;
  m.texture_mem_bytes = 256ull << 20;
  m.marshall_fields_per_sec = 40e3;
  return m;
}

MachineProfile v880z() {
  MachineProfile m;
  m.name = "v880z";
  m.cpu = "UltraSPARC III 900MHz";
  m.gpu = "XVR-4000";
  m.tri_rate = 25e6;
  m.fill_rate = 500e6;
  m.frame_overhead = 0.001;
  // Off-screen falls back to software rendering (paper §5.4).
  m.off_tri_factor = 18.0;
  m.off_fill_factor = 8.0;
  m.off_copy_rate = 40e6;
  m.off_fixed_latency = 0.003;
  m.texture_mem_bytes = 1024ull << 20;
  m.marshall_fields_per_sec = 30e3;
  return m;
}

MachineProfile centrino_laptop() {
  MachineProfile m;
  m.name = "laptop";
  m.cpu = "Intel Centrino 1.6GHz";
  m.gpu = "GeForce2 420 Go";
  m.tri_rate = 8.5e6;
  m.fill_rate = 250e6;
  m.frame_overhead = 0.0005;
  m.off_copy_rate = 18e6;
  m.off_fixed_latency = 0.004;
  m.texture_mem_bytes = 32ull << 20;
  m.marshall_fields_per_sec = 56e3;
  return m;
}

MachineProfile xeon_desktop() {
  MachineProfile m;
  m.name = "tower";
  m.cpu = "dual 2.4GHz Xeon";
  m.gpu = "nVidia FX3000G";
  m.tri_rate = 40e6;
  m.fill_rate = 1200e6;
  m.frame_overhead = 0.0003;
  m.off_copy_rate = 60e6;
  m.off_fixed_latency = 0.003;
  m.texture_mem_bytes = 256ull << 20;
  m.marshall_fields_per_sec = 90e3;
  return m;
}

MachineProfile athlon_desktop() {
  MachineProfile m;
  m.name = "adrenochrome";
  m.cpu = "AMD Athlon 1.2GHz";
  m.gpu = "GeForce2 GTS";
  m.tri_rate = 12e6;
  m.fill_rate = 280e6;
  m.frame_overhead = 0.0005;
  m.off_copy_rate = 20e6;
  m.off_fixed_latency = 0.0042;
  m.texture_mem_bytes = 32ull << 20;
  m.marshall_fields_per_sec = 48e3;
  return m;
}

MachineProfile zaurus_pda() {
  MachineProfile m;
  m.name = "zaurus";
  m.cpu = "Intel XScale 400MHz";
  m.gpu = "";
  m.tri_rate = 0;  // no local rendering — thin client only
  m.fill_rate = 0;
  m.off_copy_rate = 0;
  m.texture_mem_bytes = 0;
  // C++ client: raw byte array cast directly to the image format (§5.1);
  // calibrated to Table 2's "other overheads" (~0.047 s for 40 k pixels).
  m.pixel_unpack_rate = 850e3;
  m.marshall_fields_per_sec = 5e3;
  return m;
}

std::vector<MachineProfile> testbed() {
  return {onyx3000(), v880z(), centrino_laptop(), xeon_desktop(), athlon_desktop(), zaurus_pda()};
}

MachineProfile profile_by_name(const std::string& name) {
  for (const MachineProfile& m : testbed())
    if (m.name == name) return m;
  return centrino_laptop();
}

}  // namespace rave::sim

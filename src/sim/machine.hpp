// Machine profiles for the paper's 2004 testbed (§4.4). The hardware —
// SGI Onyx 3000, Sun V880z/XVR-4000, Centrino laptop with GeForce2 420 Go,
// Athlon/GeForce2 GTS, Xeon/FX3000G, Sharp Zaurus PDA — is simulated via
// rate parameters calibrated to the *ratios* the paper publishes
// (Tables 2-5); see DESIGN.md substitutions. The render pipeline model
// separates on-screen rendering from Java3D-style off-screen rendering
// (request/poll with a hidden readback/notify path, §5.4).
#pragma once

#include <string>
#include <vector>

namespace rave::sim {

struct MachineProfile {
  std::string name;      // host name used in the registry
  std::string cpu;
  std::string gpu;

  // On-screen rendering rates.
  double tri_rate = 10e6;        // triangles/second
  double fill_rate = 300e6;      // pixels/second
  double frame_overhead = 2e-4;  // fixed per-frame setup, seconds

  // Off-screen pipeline (Java3D semantics). Rendering itself may fall back
  // to software (factor > 1 divides the hardware rates — the paper
  // suspects exactly this for the XVR-4000, §5.4).
  double off_tri_factor = 1.0;
  double off_fill_factor = 1.0;
  // Readback/copy of the completed image into application memory,
  // pixels/second. Paid per off-screen frame.
  double off_copy_rate = 40e6;
  // Latency between the render completing and completion becoming visible
  // to a poller. Hidden (all but one) by interleaved requests.
  double off_fixed_latency = 0.004;

  uint64_t texture_mem_bytes = 64ull << 20;

  // CPU-side costs.
  double marshall_fields_per_sec = 56e3;  // introspective scene marshalling (§5.5)
  double pixel_unpack_rate = 1.0e6;       // client image unpack+blit, pixels/s
  // HTTP + Axis dispatch + XML parse per SOAP call; calibrated to the
  // paper's ~0.7 s UDDI access-point scan (Table 5).
  double soap_call_overhead = 0.65;
  double container_instance_creation = 9.0;  // Axis service-instance creation, seconds

  [[nodiscard]] bool has_renderer() const { return tri_rate > 0; }
};

// The testbed, in the paper's order.
MachineProfile onyx3000();           // SGI Onyx 3000, 32 CPUs, 3 IR pipes
MachineProfile v880z();              // Sun Fire V880z, XVR-4000
MachineProfile centrino_laptop();    // Intel Centrino 1.6 GHz, GeForce2 420 Go
MachineProfile xeon_desktop();       // dual 2.4 GHz Xeon, FX3000G
MachineProfile athlon_desktop();     // AMD Athlon 1.2 GHz, GeForce2 GTS
MachineProfile zaurus_pda();         // Sharp Zaurus (no renderer)

std::vector<MachineProfile> testbed();

// Profile lookup by host name; falls back to centrino_laptop.
MachineProfile profile_by_name(const std::string& name);

}  // namespace rave::sim

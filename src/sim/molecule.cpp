#include "sim/molecule.hpp"

#include <cmath>

namespace rave::sim {

using util::Vec3;

uint32_t Molecule::add_atom(const Vec3& position, const std::string& element) {
  Atom atom;
  atom.position = position;
  atom.element = element;
  atom.color = element_color(element);
  if (element == "H") {
    atom.mass = 0.3f;
    atom.radius = 0.15f;
  }
  atoms_.push_back(atom);
  pending_impulses_.emplace_back(0, 0, 0);
  return static_cast<uint32_t>(atoms_.size() - 1);
}

void Molecule::add_bond(uint32_t a, uint32_t b, float stiffness) {
  add_bond_with_rest(a, b, (atoms_[a].position - atoms_[b].position).length(), stiffness);
}

void Molecule::add_bond_with_rest(uint32_t a, uint32_t b, float rest_length, float stiffness) {
  Bond bond;
  bond.a = a;
  bond.b = b;
  bond.rest_length = rest_length;
  bond.stiffness = stiffness;
  bonds_.push_back(bond);
}

void Molecule::apply_impulse(uint32_t atom, const Vec3& impulse) {
  if (atom < pending_impulses_.size()) pending_impulses_[atom] += impulse;
}

void Molecule::pin_atom(uint32_t atom, const Vec3& position) {
  if (atom >= atoms_.size()) return;
  atoms_[atom].position = position;
  atoms_[atom].velocity = {0, 0, 0};
}

void Molecule::step(float dt) {
  std::vector<Vec3> forces(atoms_.size(), Vec3{0, 0, 0});
  for (const Bond& bond : bonds_) {
    const Vec3 delta = atoms_[bond.b].position - atoms_[bond.a].position;
    const float length = delta.length();
    if (length < 1e-6f) continue;
    const float stretch = length - bond.rest_length;
    const Vec3 force = delta * (bond.stiffness * stretch / length);
    forces[bond.a] += force;
    forces[bond.b] -= force;
  }
  for (size_t i = 0; i < atoms_.size(); ++i) {
    Atom& atom = atoms_[i];
    const Vec3 accel = (forces[i] - atom.velocity * damping) * (1.0f / atom.mass) +
                       pending_impulses_[i] * (1.0f / (atom.mass * dt));
    atom.velocity += accel * dt;
    atom.position += atom.velocity * dt;
    pending_impulses_[i] = {0, 0, 0};
  }
}

double Molecule::potential_energy() const {
  double energy = 0;
  for (const Bond& bond : bonds_) {
    const float stretch =
        (atoms_[bond.b].position - atoms_[bond.a].position).length() - bond.rest_length;
    energy += 0.5 * bond.stiffness * stretch * stretch;
  }
  return energy;
}

double Molecule::kinetic_energy() const {
  double energy = 0;
  for (const Atom& atom : atoms_)
    energy += 0.5 * atom.mass * atom.velocity.length_sq();
  return energy;
}

Molecule make_ring_molecule(int ring_size, float strain) {
  Molecule mol;
  const float radius = 1.0f;
  std::vector<uint32_t> ring;
  for (int i = 0; i < ring_size; ++i) {
    const float angle = 2.0f * util::kPi * static_cast<float>(i) / ring_size;
    ring.push_back(mol.add_atom({radius * std::cos(angle), radius * std::sin(angle), 0}, "C"));
  }
  for (int i = 0; i < ring_size; ++i)
    mol.add_bond(ring[static_cast<size_t>(i)], ring[static_cast<size_t>((i + 1) % ring_size)]);
  // Hydrogens pointing outward.
  for (int i = 0; i < ring_size; ++i) {
    const float angle = 2.0f * util::kPi * static_cast<float>(i) / ring_size;
    const uint32_t h = mol.add_atom(
        {1.6f * std::cos(angle), 1.6f * std::sin(angle), 0.0f}, "H");
    mol.add_bond(ring[static_cast<size_t>(i)], h, 25.0f);
  }
  // Pre-strain: kick the ring out of plane; rest lengths stay those of the
  // relaxed geometry, so the structure visibly settles back.
  Molecule rebuilt;
  const auto& atoms = mol.atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    Vec3 p = atoms[i].position;
    p.z += strain * std::sin(static_cast<float>(i) * 1.7f);
    (void)rebuilt.add_atom(p, atoms[i].element);
  }
  for (const Bond& bond : mol.bonds())
    rebuilt.add_bond_with_rest(bond.a, bond.b, bond.rest_length, bond.stiffness);
  return rebuilt;
}

Molecule make_chain_molecule(int length) {
  Molecule mol;
  uint32_t prev = 0;
  for (int i = 0; i < length; ++i) {
    const uint32_t atom = mol.add_atom(
        {static_cast<float>(i) * 0.8f, 0.15f * static_cast<float>(i % 2), 0},
        i % 3 == 2 ? "O" : "C");
    if (i > 0) mol.add_bond(prev, atom);
    prev = atom;
  }
  return mol;
}

Vec3 element_color(const std::string& element) {
  if (element == "H") return {0.9f, 0.9f, 0.9f};
  if (element == "O") return {0.9f, 0.15f, 0.15f};
  if (element == "N") return {0.2f, 0.3f, 0.95f};
  if (element == "C") return {0.25f, 0.25f, 0.28f};
  return {0.7f, 0.5f, 0.9f};
}

}  // namespace rave::sim

// Toy molecular-dynamics simulator — the paper's §5.2 "third-party
// simulator" whose molecule RAVE displays: atoms connected by harmonic
// bonds, damped velocity-Verlet integration, and an impulse hook so a
// collaborating user can "exert a force on a molecule" from the GUI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace rave::sim {

struct Atom {
  util::Vec3 position;
  util::Vec3 velocity;
  float mass = 1.0f;
  float radius = 0.25f;
  util::Vec3 color{0.7f, 0.7f, 0.7f};
  std::string element = "C";
};

struct Bond {
  uint32_t a = 0, b = 0;
  float rest_length = 1.0f;
  float stiffness = 40.0f;
};

class Molecule {
 public:
  Molecule() = default;

  uint32_t add_atom(const util::Vec3& position, const std::string& element = "C");
  // Rest length measured from the current atom positions.
  void add_bond(uint32_t a, uint32_t b, float stiffness = 40.0f);
  // Explicit rest length (e.g. the relaxed geometry of a strained input).
  void add_bond_with_rest(uint32_t a, uint32_t b, float rest_length, float stiffness = 40.0f);

  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }
  [[nodiscard]] const std::vector<Bond>& bonds() const { return bonds_; }

  // Damped velocity-Verlet step.
  void step(float dt);

  // The user's steering force (applied over one step).
  void apply_impulse(uint32_t atom, const util::Vec3& impulse);

  // Clamp an atom to a position (a user dragging it); released next step.
  void pin_atom(uint32_t atom, const util::Vec3& position);

  // Total spring potential energy — settles as the structure relaxes.
  [[nodiscard]] double potential_energy() const;
  [[nodiscard]] double kinetic_energy() const;

  float damping = 2.0f;  // velocity damping coefficient

 private:
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<util::Vec3> pending_impulses_;
};

// A benzene-like ring with hydrogens, pre-strained so it visibly relaxes.
Molecule make_ring_molecule(int ring_size = 6, float strain = 0.4f);

// A flexible chain (polymer-like), n atoms.
Molecule make_chain_molecule(int length = 8);

// Per-element display color (CPK-ish).
util::Vec3 element_color(const std::string& element);

}  // namespace rave::sim

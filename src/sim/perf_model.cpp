#include "sim/perf_model.hpp"

#include <algorithm>

namespace rave::sim {

namespace {
double safe_div(double num, double den) { return den > 0 ? num / den : 0.0; }
}  // namespace

double onscreen_seconds(const MachineProfile& m, uint64_t triangles, uint64_t pixels) {
  return m.frame_overhead + safe_div(static_cast<double>(triangles), m.tri_rate) +
         safe_div(static_cast<double>(pixels), m.fill_rate);
}

double offscreen_render_seconds(const MachineProfile& m, uint64_t triangles, uint64_t pixels) {
  return m.frame_overhead +
         safe_div(static_cast<double>(triangles) * m.off_tri_factor, m.tri_rate) +
         safe_div(static_cast<double>(pixels) * m.off_fill_factor, m.fill_rate);
}

double offscreen_sequential_seconds(const MachineProfile& m, uint64_t triangles,
                                    uint64_t pixels) {
  return offscreen_render_seconds(m, triangles, pixels) +
         safe_div(static_cast<double>(pixels), m.off_copy_rate) + m.off_fixed_latency;
}

double volume_march_seconds(const MachineProfile& m, uint64_t rays, uint64_t samples) {
  return safe_div(static_cast<double>(rays), m.fill_rate * 0.5) +
         safe_div(static_cast<double>(samples), m.fill_rate * 0.1);
}

OffscreenBatch offscreen_batch(const MachineProfile& m, uint64_t triangles, uint64_t pixels,
                               int count) {
  OffscreenBatch batch;
  const double n = static_cast<double>(std::max(count, 1));
  batch.onscreen_seconds = n * onscreen_seconds(m, triangles, pixels);
  batch.sequential_seconds = n * offscreen_sequential_seconds(m, triangles, pixels);
  // Interleaved: renders run back-to-back; each frame's readback+notify
  // overlaps the next frame's render, so only the final one is exposed.
  batch.interleaved_seconds = n * offscreen_render_seconds(m, triangles, pixels) +
                              safe_div(static_cast<double>(pixels), m.off_copy_rate) +
                              m.off_fixed_latency;
  return batch;
}

ThinClientFrame thin_client_frame(const MachineProfile& server, const MachineProfile& client,
                                  const net::LinkProfile& link, uint64_t triangles, int width,
                                  int height, uint64_t compressed_bytes) {
  ThinClientFrame frame;
  const uint64_t pixels = static_cast<uint64_t>(width) * static_cast<uint64_t>(height);
  const uint64_t image_bytes = compressed_bytes != 0 ? compressed_bytes : pixels * 3;
  frame.render_seconds = offscreen_sequential_seconds(server, triangles, pixels);
  frame.transfer_seconds = link.delivery_seconds(image_bytes);
  frame.client_seconds = safe_div(static_cast<double>(pixels), client.pixel_unpack_rate);
  return frame;
}

double marshall_seconds(const MachineProfile& m, uint64_t fields) {
  return safe_div(static_cast<double>(fields), m.marshall_fields_per_sec);
}

double soap_call_seconds(const MachineProfile& m, uint64_t response_fields) {
  // Dispatch overhead plus XML marshalling of the response at ~20 fields
  // per "introspected object" equivalent.
  return m.soap_call_overhead + marshall_seconds(m, response_fields);
}

UddiTiming uddi_timing(const MachineProfile& m, uint64_t services_advertised) {
  UddiTiming t;
  const uint64_t fields_per_service = 24;  // binding key + access point + info
  const uint64_t scan_fields = services_advertised * fields_per_service + 64;
  t.scan_seconds = soap_call_seconds(m, scan_fields);
  // Full bootstrap: proxy creation, find business, enumerate services,
  // then the access-point scan (§5.5).
  t.full_bootstrap = kUddiProxyInitSeconds + soap_call_seconds(m, 128) +
                     soap_call_seconds(m, services_advertised * 48 + 64) + t.scan_seconds;
  return t;
}

double service_bootstrap_seconds(const MachineProfile& data_host,
                                 const MachineProfile& render_host,
                                 const net::LinkProfile& link, uint64_t scene_fields,
                                 uint64_t scene_bytes) {
  // Instance creation via the Axis container on the render host, then the
  // introspective scene publish at the data service, the wire transfer,
  // and the (cheaper, allocation-bound) demarshal at the render service.
  return render_host.container_instance_creation + marshall_seconds(data_host, scene_fields) +
         link.delivery_seconds(scene_bytes) +
         marshall_seconds(render_host, scene_fields / 8);
}

}  // namespace rave::sim

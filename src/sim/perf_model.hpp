// Performance model over machine profiles — the arithmetic that stands in
// for running on the 2004 testbed. Every formula is a direct model of a
// mechanism the paper describes; the bench harness evaluates these to
// regenerate Tables 2-5 and checks their shape against the published rows.
#pragma once

#include <cstdint>

#include "net/simlink.hpp"
#include "sim/machine.hpp"

namespace rave::sim {

// --- rendering -----------------------------------------------------------

// On-screen frame time: setup + geometry + fill.
double onscreen_seconds(const MachineProfile& m, uint64_t triangles, uint64_t pixels);

// Off-screen render work (software-fallback factors applied), excluding
// the readback/notify path.
double offscreen_render_seconds(const MachineProfile& m, uint64_t triangles, uint64_t pixels);

// One off-screen frame as a sequential requester observes it:
// render + readback copy + completion-visibility latency.
double offscreen_sequential_seconds(const MachineProfile& m, uint64_t triangles, uint64_t pixels);

// Volume marching: per-ray setup (box clip, brick walk) plus per-sample
// trilinear/compositing work, both paid out of the fill pipeline.
double volume_march_seconds(const MachineProfile& m, uint64_t rays, uint64_t samples);

struct OffscreenBatch {
  double sequential_seconds = 0;   // request → wait → next
  double interleaved_seconds = 0;  // all requested up front, round-robin poll
  double onscreen_seconds = 0;     // baseline: same frames on-screen
  // Table 3/4 percentages: on-screen time / off-screen time.
  [[nodiscard]] double sequential_percent() const {
    return 100.0 * onscreen_seconds / sequential_seconds;
  }
  [[nodiscard]] double interleaved_percent() const {
    return 100.0 * onscreen_seconds / interleaved_seconds;
  }
};

// Render `count` images of the given complexity off-screen both ways.
// Interleaving pipelines readback+latency behind the next frame's render,
// exposing them only once at the tail.
OffscreenBatch offscreen_batch(const MachineProfile& m, uint64_t triangles, uint64_t pixels,
                               int count);

// --- thin-client pipeline (Table 2) ---------------------------------------

struct ThinClientFrame {
  double render_seconds = 0;    // off-screen render on the render service
  double transfer_seconds = 0;  // image over the client link
  double client_seconds = 0;    // unpack + blit on the client
  [[nodiscard]] double total_latency() const {
    return render_seconds + transfer_seconds + client_seconds;
  }
  [[nodiscard]] double fps() const { return 1.0 / total_latency(); }
};

ThinClientFrame thin_client_frame(const MachineProfile& server, const MachineProfile& client,
                                  const net::LinkProfile& link, uint64_t triangles, int width,
                                  int height, uint64_t compressed_bytes = 0);

// --- marshalling & service bootstrap (Table 5) -----------------------------

// Introspective marshalling of `fields` scene-graph fields (§5.5).
double marshall_seconds(const MachineProfile& m, uint64_t fields);

// One SOAP call: HTTP/Axis dispatch plus marshalling of `response_fields`.
double soap_call_seconds(const MachineProfile& m, uint64_t response_fields = 64);

struct UddiTiming {
  double scan_seconds = 0;       // live proxy: rescan access points (1 call)
  double full_bootstrap = 0;     // proxy init + find business + find services + access points
};
UddiTiming uddi_timing(const MachineProfile& m, uint64_t services_advertised);

// Render-service bootstrap: instance creation + scene marshalling at the
// data service + transfer + demarshalling at the render service.
double service_bootstrap_seconds(const MachineProfile& data_host,
                                 const MachineProfile& render_host,
                                 const net::LinkProfile& link, uint64_t scene_fields,
                                 uint64_t scene_bytes);

// UDDI proxy initialisation cost (the "full bootstrap" premium, §5.5).
constexpr double kUddiProxyInitSeconds = 2.6;

}  // namespace rave::sim

#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace rave::sim {

const char* usage_name(UsageKind kind) {
  switch (kind) {
    case UsageKind::Idle: return "idle";
    case UsageKind::Orbit: return "orbit";
    case UsageKind::Inspect: return "inspect";
    case UsageKind::FlyThrough: return "fly-through";
  }
  return "?";
}

std::vector<UsageStep> generate_trace(const UsageProfile& profile,
                                      const scene::Camera& initial) {
  std::vector<UsageStep> trace;
  std::mt19937 rng(profile.seed);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  scene::Camera camera = initial;
  const float base_distance = (camera.eye - camera.target).length();

  for (double t = 0; t <= profile.duration; t += profile.step_interval) {
    UsageStep step;
    step.time = t;
    switch (profile.kind) {
      case UsageKind::Idle:
        // Rare small adjustments.
        if (unit(rng) < 0.05f) camera.orbit(0.05f * (unit(rng) - 0.5f), 0.0f);
        break;
      case UsageKind::Orbit:
        camera.orbit(0.06f, 0.01f * std::sin(static_cast<float>(t)));
        step.edits_scene = unit(rng) < 0.02f;
        break;
      case UsageKind::Inspect: {
        // Bursty: dolly in for a while, hover, pull back.
        const float phase = std::fmod(static_cast<float>(t), 6.0f);
        if (phase < 2.0f)
          camera.dolly(base_distance * 0.04f);
        else if (phase > 4.0f)
          camera.dolly(-base_distance * 0.05f);
        camera.orbit(0.03f * (unit(rng) - 0.5f), 0.02f * (unit(rng) - 0.5f));
        step.edits_scene = unit(rng) < 0.08f;
        break;
      }
      case UsageKind::FlyThrough: {
        // Sweep through the dataset: move eye and target together.
        const util::Vec3 drift{0.08f * std::cos(static_cast<float>(t) * 0.7f),
                               0.02f * std::sin(static_cast<float>(t) * 1.3f),
                               0.08f * std::sin(static_cast<float>(t) * 0.7f)};
        camera.eye += drift;
        camera.target += drift * 0.9f;
        break;
      }
    }
    step.camera = camera;
    trace.push_back(step);
  }
  return trace;
}

double load_factor(const UsageStep& step, const util::Vec3& scene_center, float scene_radius) {
  const float distance = (step.camera.eye - scene_center).length();
  if (scene_radius <= 0) return 1.0;
  // Screen coverage grows as the camera closes in; clamp to [0.15, 3].
  const double coverage = static_cast<double>(scene_radius) /
                          std::max(distance, scene_radius * 0.2f);
  return std::clamp(coverage * (step.edits_scene ? 1.3 : 1.0), 0.15, 3.0);
}

}  // namespace rave::sim

// Synthetic user-interaction workload profiles. The paper leaves this as
// the open calibration question of §3.2.7: "Loadings due to user
// interaction and navigation will have to be analysed to determine these
// usage profiles and the workload migration trigger thresholds." This
// module provides the analysis tooling: reproducible camera/interaction
// traces of typical usage (orbiting, close inspection, fly-through, idle
// watching) that drive the migration-threshold ablation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scene/camera.hpp"

namespace rave::sim {

enum class UsageKind : uint8_t {
  Idle,        // watching: camera still, occasional nudge
  Orbit,       // steady rotation around the dataset
  Inspect,     // dolly in/out with small orbits (bursty load)
  FlyThrough,  // large continuous movement (sustained high load)
};

const char* usage_name(UsageKind kind);

struct UsageStep {
  double time = 0;       // seconds from trace start
  scene::Camera camera;  // viewpoint at this step
  bool edits_scene = false;  // the user also manipulates an object
};

struct UsageProfile {
  UsageKind kind = UsageKind::Orbit;
  double duration = 10.0;
  double step_interval = 0.1;  // camera update cadence
  uint32_t seed = 1;
};

// Deterministic trace of camera poses (and edit markers) for a profile,
// starting from `initial` framed on the dataset.
std::vector<UsageStep> generate_trace(const UsageProfile& profile,
                                      const scene::Camera& initial);

// Relative render load factor at each step: how much of the scene the
// camera pose exposes (1 = all of it). Derived from view distance — close
// inspection fills the screen with geometry, distant watching does not.
double load_factor(const UsageStep& step, const util::Vec3& scene_center, float scene_radius);

}  // namespace rave::sim

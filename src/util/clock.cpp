#include "util/clock.hpp"

#include <chrono>
#include <thread>

namespace rave::util {

namespace {
double steady_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : epoch_(steady_seconds()) {}

double RealClock::now() const { return steady_seconds() - epoch_; }

void RealClock::wait_until(double t) {
  const double delta = t - now();
  if (delta > 0) std::this_thread::sleep_for(std::chrono::duration<double>(delta));
}

void SimClock::advance(double dt) {
  std::lock_guard lock(mu_);
  now_ += dt;
  cv_.notify_all();
}

void SimClock::advance_to(double t) {
  std::lock_guard lock(mu_);
  if (t > now_) now_ = t;
  cv_.notify_all();
}

void SimClock::wait_until(double t) {
  std::unique_lock lock(mu_);
  if (auto_advance_) {
    if (t > now_) now_ = t;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return now_ >= t; });
}

}  // namespace rave::util

// Time source abstraction. All RAVE components take a Clock& rather than
// calling a system clock, so the same code runs against wall time (live
// services, examples) or virtual time (deterministic tests and the
// benchmark harness that reproduces the paper's 2004 testbed timings in
// milliseconds of host time).
#pragma once

#include <condition_variable>
#include <mutex>

namespace rave::util {

// Times are seconds since an arbitrary epoch.
class Clock {
 public:
  virtual ~Clock() = default;

  [[nodiscard]] virtual double now() const = 0;

  // Block (real clock) or advance virtual time (sim clock) until `t`.
  virtual void wait_until(double t) = 0;

  void sleep_for(double seconds) { wait_until(now() + seconds); }
};

// Monotonic wall-clock time.
class RealClock final : public Clock {
 public:
  RealClock();
  [[nodiscard]] double now() const override;
  void wait_until(double t) override;

 private:
  double epoch_ = 0.0;
};

// Virtual time under test control. wait_until() advances time directly,
// which makes single-threaded discrete-event simulations trivial; when
// multiple threads share a SimClock, advance() wakes blocked waiters.
class SimClock final : public Clock {
 public:
  explicit SimClock(double start = 0.0) : now_(start) {}

  [[nodiscard]] double now() const override {
    std::lock_guard lock(mu_);
    return now_;
  }

  // Advancing past a waiter's deadline releases it.
  void advance(double dt);
  void advance_to(double t);

  // In auto-advance mode (the default), wait_until() moves time forward
  // itself — pure discrete-event style. With auto-advance off, the call
  // blocks until another thread advances the clock past `t`.
  void set_auto_advance(bool enabled) {
    std::lock_guard lock(mu_);
    auto_advance_ = enabled;
  }

  void wait_until(double t) override;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  double now_ = 0.0;
  bool auto_advance_ = true;
};

}  // namespace rave::util

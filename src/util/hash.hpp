// Content hashing for the fan-out frame cache. FNV-1a 64 is used for
// every content address in the repo: it is a pure byte walk, so the hash
// of a tile or an encoded image is identical across SIMD levels, thread
// counts and hosts by construction — the property the content-addressed
// tile cache's determinism argument rests on (DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rave::util {

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

[[nodiscard]] inline uint64_t fnv1a(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// Fold a fixed-width integer in little-endian byte order, so the hash does
// not depend on host endianness.
[[nodiscard]] inline uint64_t fnv1a_u32(uint64_t h, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    h ^= static_cast<uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace rave::util

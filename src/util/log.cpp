#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/clock.hpp"

namespace rave::util {

namespace {
// RAVE_LOG=trace|debug|info|warn|error|off overrides the default level at
// process start; set_log_level() still wins afterwards.
LogLevel initial_level() {
  const char* env = std::getenv("RAVE_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<const Clock*> g_clock{nullptr};
std::mutex g_write_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_clock(const Clock* clock) { g_clock.store(clock, std::memory_order_release); }

void log_write(LogLevel level, const std::string& component, const std::string& message) {
  if (level < log_level()) return;
  // Compose the whole line first so it reaches the stream as ONE write:
  // pool threads interleaving partial flushes used to shear lines.
  std::string line;
  line.reserve(component.size() + message.size() + 32);
  if (const Clock* clock = g_clock.load(std::memory_order_acquire)) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[%.6f] ", clock->now());
    line += stamp;
  }
  line += "[";
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  line += "\n";
  std::lock_guard lock(g_write_mu);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace rave::util

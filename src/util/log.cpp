#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace rave::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_write_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_write(LogLevel level, const std::string& component, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_write_mu);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}

}  // namespace rave::util

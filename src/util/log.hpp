// Minimal leveled logger. RAVE services run as background processes sharing
// machines with interactive users (paper §3.2.3), so the default level is
// Warn — quiet unless something needs attention.
#pragma once

#include <sstream>
#include <string>

namespace rave::util {

class Clock;

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

void set_log_level(LogLevel level);
LogLevel log_level();

// When a clock is installed, every log line is prefixed with `[seconds]`
// from it — virtual time under SimClock, wall time under RealClock. Pass
// nullptr to remove. The clock must outlive all logging.
void set_log_clock(const Clock* clock);

void log_write(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { log_write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_trace(std::string component) {
  return {LogLevel::Trace, std::move(component)};
}
inline detail::LogLine log_debug(std::string component) {
  return {LogLevel::Debug, std::move(component)};
}
inline detail::LogLine log_info(std::string component) {
  return {LogLevel::Info, std::move(component)};
}
inline detail::LogLine log_warn(std::string component) {
  return {LogLevel::Warn, std::move(component)};
}
inline detail::LogLine log_error(std::string component) {
  return {LogLevel::Error, std::move(component)};
}

}  // namespace rave::util

// Result<T>: a lightweight expected-like type (std::expected is C++23).
// Errors carry a human-readable message — the paper's data service refuses
// requests "with an explanatory error message", so errors are strings by
// design, not codes.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rave::util {

struct Error {
  std::string message;
};

inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

// [[nodiscard]] at class scope: a dropped Result is a silently swallowed
// failure, which is exactly the bug class the fault-tolerance layer exists
// to eliminate. Callers that truly don't care must say so with (void).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : value_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  [[nodiscard]] const std::string& error() const {
    assert(!ok());
    return std::get<Error>(value_).message;
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> value_;
};

// Specialization-free void flavour.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error.message)), failed_(true) {}  // NOLINT

  static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string error_;
  bool failed_ = false;
};

// Result<void> spells "Status" in generic code: APIs can be written
// uniformly as Result<T> for any T including void.
template <>
class [[nodiscard]] Result<void> : public Status {
 public:
  using Status::Status;
  Result() = default;
  Result(Status status) : Status(std::move(status)) {}  // NOLINT(google-explicit-constructor)
};

}  // namespace rave::util

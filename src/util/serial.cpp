#include "util/serial.hpp"

#include <array>

namespace rave::util {

namespace {
constexpr char kB64Alphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> build_decode_table() {
  std::array<int8_t, 256> t{};
  t.fill(-1);
  for (int i = 0; i < 64; ++i) t[static_cast<uint8_t>(kB64Alphabet[i])] = static_cast<int8_t>(i);
  return t;
}
}  // namespace

std::string base64_encode(std::span<const uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    const uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                       (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back(kB64Alphabet[v & 63]);
    i += 3;
  }
  const size_t rem = data.size() - i;
  if (rem == 1) {
    const uint32_t v = static_cast<uint32_t>(data[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const uint32_t v =
        (static_cast<uint32_t>(data[i]) << 16) | (static_cast<uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 63]);
    out.push_back(kB64Alphabet[(v >> 12) & 63]);
    out.push_back(kB64Alphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::vector<uint8_t>> base64_decode(const std::string& text) {
  static const std::array<int8_t, 256> table = build_decode_table();
  std::vector<uint8_t> out;
  out.reserve(text.size() / 4 * 3);
  uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    if (c == '=' || c == '\n' || c == '\r' || c == ' ') continue;
    const int8_t v = table[static_cast<uint8_t>(c)];
    if (v < 0) return make_error("base64: invalid character");
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>((acc >> bits) & 0xFF));
    }
  }
  return out;
}

}  // namespace rave::util

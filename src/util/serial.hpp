// Binary serialization used by the RAVE wire protocol. Everything is
// little-endian and explicitly sized, so a scene serialized on one host
// deserializes identically on any other — the paper's heterogeneous-
// endianness requirement (SGI IRIX big-endian talking to x86) is met by
// fixing the wire byte order instead of sending XML for bulk data.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/vec.hpp"

namespace rave::util {

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { append_le(v); }
  void u32(uint32_t v) { append_le(v); }
  void u64(uint64_t v) { append_le(v); }
  void i32(int32_t v) { append_le(static_cast<uint32_t>(v)); }
  void i64(int64_t v) { append_le(static_cast<uint64_t>(v)); }

  void f32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void f64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void bytes(std::span<const uint8_t> data) {
    u32(static_cast<uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  // Raw append without a length prefix (caller frames it).
  void raw(std::span<const uint8_t> data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  void vec3(const Vec3& v) {
    f32(v.x);
    f32(v.y);
    f32(v.z);
  }

  void mat4(const Mat4& m) {
    for (float f : m.m) f32(f);
  }

  void f32_span(std::span<const float> data) {
    u32(static_cast<uint32_t>(data.size()));
    const size_t off = buf_.size();
    buf_.resize(off + data.size() * 4);
    for (size_t i = 0; i < data.size(); ++i) {
      uint32_t bits;
      std::memcpy(&bits, &data[i], 4);
      put_le(off + i * 4, bits);
    }
  }

  void u32_span(std::span<const uint32_t> data) {
    u32(static_cast<uint32_t>(data.size()));
    const size_t off = buf_.size();
    buf_.resize(off + data.size() * 4);
    for (size_t i = 0; i < data.size(); ++i) put_le(off + i * 4, data[i]);
  }

  [[nodiscard]] const std::vector<uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    const size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    put_le(off, v);
  }

  template <typename T>
  void put_le(size_t off, T v) {
    for (size_t i = 0; i < sizeof(T); ++i) buf_[off + i] = static_cast<uint8_t>(v >> (8 * i));
  }

  std::vector<uint8_t> buf_;
};

// Reader over a borrowed byte span. Over-reads set an error flag instead of
// invoking UB; callers check ok() once after a batch of reads.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t u8() { return read_le<uint8_t>(); }
  uint16_t u16() { return read_le<uint16_t>(); }
  uint32_t u32() { return read_le<uint32_t>(); }
  uint64_t u64() { return read_le<uint64_t>(); }
  int32_t i32() { return static_cast<int32_t>(read_le<uint32_t>()); }
  int64_t i64() { return static_cast<int64_t>(read_le<uint64_t>()); }

  float f32() {
    const uint32_t bits = read_le<uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const uint64_t bits = read_le<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const uint32_t n = u32();
    if (!check(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<uint8_t> bytes() {
    const uint32_t n = u32();
    if (!check(n)) return {};
    std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                             data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Vec3 vec3() {
    Vec3 v;
    v.x = f32();
    v.y = f32();
    v.z = f32();
    return v;
  }

  Mat4 mat4() {
    Mat4 m;
    for (float& f : m.m) f = f32();
    return m;
  }

  std::vector<float> f32_span() {
    const uint32_t n = u32();
    std::vector<float> out;
    if (!check(static_cast<size_t>(n) * 4)) return out;
    out.resize(n);
    for (uint32_t i = 0; i < n; ++i) out[i] = f32();
    return out;
  }

  std::vector<uint32_t> u32_span() {
    const uint32_t n = u32();
    std::vector<uint32_t> out;
    if (!check(static_cast<size_t>(n) * 4)) return out;
    out.resize(n);
    for (uint32_t i = 0; i < n; ++i) out[i] = u32();
    return out;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }

 private:
  bool check(size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T read_le() {
    if (!check(sizeof(T))) return T{};
    T v{};
    for (size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<uint64_t>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Base64 codec — SOAP payloads carry binary data (framebuffers in fallback
// paths, WSDL attachments) base64-encoded, matching the paper's plain-text
// transport constraint.
std::string base64_encode(std::span<const uint8_t> data);
Result<std::vector<uint8_t>> base64_decode(const std::string& text);

}  // namespace rave::util

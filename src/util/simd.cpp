#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/log.hpp"

#if defined(__x86_64__)
#define RAVE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define RAVE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace rave::util {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Sse2: return "sse2";
    case SimdLevel::Avx2: return "avx2";
    case SimdLevel::Neon: return "neon";
  }
  return "?";
}

bool parse_simd_level(const char* name, SimdLevel& out) {
  if (name == nullptr) return false;
  for (const SimdLevel l :
       {SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon}) {
    if (std::strcmp(name, simd_level_name(l)) == 0) {
      out = l;
      return true;
    }
  }
  return false;
}

SimdLevel max_simd_level() {
#if defined(RAVE_SIMD_X86)
  static const SimdLevel level =
      __builtin_cpu_supports("avx2") ? SimdLevel::Avx2 : SimdLevel::Sse2;
  return level;
#elif defined(RAVE_SIMD_NEON)
  return SimdLevel::Neon;
#else
  return SimdLevel::Scalar;
#endif
}

namespace {

// An unsupported request degrades to Scalar (never an illegal instruction);
// an x86 request above the CPU's capability clamps to the capability.
SimdLevel clamp_to_hardware(SimdLevel req) {
  const SimdLevel hw = max_simd_level();
  switch (req) {
    case SimdLevel::Scalar: return SimdLevel::Scalar;
    case SimdLevel::Sse2:
    case SimdLevel::Avx2:
      if (hw != SimdLevel::Sse2 && hw != SimdLevel::Avx2) return SimdLevel::Scalar;
      return static_cast<uint8_t>(req) <= static_cast<uint8_t>(hw) ? req : hw;
    case SimdLevel::Neon:
      return hw == SimdLevel::Neon ? SimdLevel::Neon : SimdLevel::Scalar;
  }
  return SimdLevel::Scalar;
}

std::atomic<uint8_t>& active_level_storage() {
  static std::atomic<uint8_t> level = [] {
    SimdLevel l = max_simd_level();
    if (const char* env = std::getenv("RAVE_SIMD")) {
      SimdLevel parsed;
      if (parse_simd_level(env, parsed)) {
        l = clamp_to_hardware(parsed);
      } else {
        log_warn("simd") << "RAVE_SIMD='" << env << "' not recognized; using "
                         << simd_level_name(l);
      }
    }
    return static_cast<uint8_t>(l);
  }();
  return level;
}

}  // namespace

SimdLevel active_simd_level() {
  return static_cast<SimdLevel>(
      active_level_storage().load(std::memory_order_relaxed));
}

void set_simd_level(SimdLevel level) {
  active_level_storage().store(static_cast<uint8_t>(clamp_to_hardware(level)),
                               std::memory_order_relaxed);
}

namespace simd {
namespace {

// ---- scalar twins ---------------------------------------------------------

size_t mismatch_scalar(const uint8_t* a, const uint8_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

void byte_sub_scalar(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<uint8_t>(a[i] - b[i]);
}

void byte_add_scalar(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<uint8_t>(a[i] + b[i]);
}

void fill_rgb_scalar(uint8_t* dst, size_t pixels, uint8_t r, uint8_t g, uint8_t b) {
  for (size_t i = 0; i < pixels; ++i) {
    dst[0] = r;
    dst[1] = g;
    dst[2] = b;
    dst += 3;
  }
}

void pack_rgb565_scalar(const uint8_t* rgb, uint16_t* out, size_t pixels) {
  for (size_t i = 0; i < pixels; ++i) {
    const uint16_t r = rgb[i * 3] >> 3;
    const uint16_t g = rgb[i * 3 + 1] >> 2;
    const uint16_t b = rgb[i * 3 + 2] >> 3;
    out[i] = static_cast<uint16_t>((r << 11) | (g << 5) | b);
  }
}

void depth_select_row_scalar(float* dd, const float* sd, uint8_t* dc,
                             const uint8_t* sc, int i, int width) {
  for (; i < width; ++i) {
    if (sd[i] < dd[i]) {
      dd[i] = sd[i];
      dc[i * 3] = sc[i * 3];
      dc[i * 3 + 1] = sc[i * 3 + 1];
      dc[i * 3 + 2] = sc[i * 3 + 2];
    }
  }
}

// The RGB fill pattern has period 3, which never divides the register
// width, so vector chunk j starts at phase (chunk_bytes * j) % 3. Staging
// the pattern into 3 * chunk_bytes bytes gives one pre-rotated register per
// phase; the store loop cycles through them.
void stage_rgb_pattern(uint8_t* pat, size_t bytes, uint8_t r, uint8_t g, uint8_t b) {
  for (size_t k = 0; k < bytes; k += 3) {  // bytes is a multiple of 3
    pat[k] = r;
    pat[k + 1] = g;
    pat[k + 2] = b;
  }
}

#if defined(RAVE_SIMD_X86)

// ---- SSE2 (x86-64 baseline) ----------------------------------------------

size_t mismatch_sse2(const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const int neq = _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) ^ 0xFFFF;
    if (neq != 0) return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(neq)));
  }
  return i + mismatch_scalar(a + i, b + i, n - i);
}

void byte_sub_sse2(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_sub_epi8(va, vb));
  }
  byte_sub_scalar(dst + i, a + i, b + i, n - i);
}

void byte_add_sse2(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_add_epi8(va, vb));
  }
  byte_add_scalar(dst + i, a + i, b + i, n - i);
}

void fill_rgb_sse2(uint8_t* dst, size_t pixels, uint8_t r, uint8_t g, uint8_t b) {
  const size_t total = pixels * 3;
  // Staging the 48-byte rotated pattern costs more than it saves unless
  // the fill is well past the compiler-vectorized scalar body's reach.
  // RLE runs cap at 255 px (765 B), so codec decodes always take the
  // scalar path; the vector path serves frame/row clears.
  if (total < 2048) {
    fill_rgb_scalar(dst, pixels, r, g, b);
    return;
  }
  alignas(16) uint8_t pat[48];
  stage_rgb_pattern(pat, sizeof(pat), r, g, b);
  const __m128i v[3] = {
      _mm_load_si128(reinterpret_cast<const __m128i*>(pat)),
      _mm_load_si128(reinterpret_cast<const __m128i*>(pat + 16)),
      _mm_load_si128(reinterpret_cast<const __m128i*>(pat + 32)),
  };
  size_t off = 0, phase = 0;
  for (; off + 16 <= total; off += 16) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + off), v[phase]);
    phase = phase == 2 ? 0 : phase + 1;
  }
  const uint8_t comp[3] = {r, g, b};
  for (; off < total; ++off) dst[off] = comp[off % 3];
}

void fill_f32_sse2(float* dst, size_t count, float value) {
  const __m128 v = _mm_set1_ps(value);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) _mm_storeu_ps(dst + i, v);
  for (; i < count; ++i) dst[i] = value;
}

// 16-byte color-select masks for a 4-pixel depth mask: lane bit -> 3 bytes
// of 0xFF (bytes 12..15 stay 0, so the partial overrun write preserves dst).
struct ColorMaskLut {
  alignas(16) uint8_t m[16][16];
  ColorMaskLut() {
    std::memset(m, 0, sizeof(m));
    for (int bits = 0; bits < 16; ++bits)
      for (int lane = 0; lane < 4; ++lane)
        if (bits & (1 << lane))
          for (int k = 0; k < 3; ++k) m[bits][lane * 3 + k] = 0xFF;
  }
};
const ColorMaskLut kColorMask;

void depth_select_row_sse2(float* dd, const float* sd, uint8_t* dc,
                           const uint8_t* sc, int width) {
  int i = 0;
  // Color blends store 16 bytes but only the first 12 carry pixels, so the
  // vector loop stops while the overrun still lands inside this row.
  for (; i + 6 <= width; i += 4) {
    const __m128 s = _mm_loadu_ps(sd + i);
    const __m128 d = _mm_loadu_ps(dd + i);
    const __m128 m = _mm_cmplt_ps(s, d);
    _mm_storeu_ps(dd + i, _mm_or_ps(_mm_and_ps(m, s), _mm_andnot_ps(m, d)));
    const int bits = _mm_movemask_ps(m);
    if (bits != 0) {
      const __m128i cm =
          _mm_load_si128(reinterpret_cast<const __m128i*>(kColorMask.m[bits]));
      const __m128i cs =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sc + i * 3));
      const __m128i cd =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dc + i * 3));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dc + i * 3),
                       _mm_or_si128(_mm_and_si128(cm, cs), _mm_andnot_si128(cm, cd)));
    }
  }
  depth_select_row_scalar(dd, sd, dc, sc, i, width);
}

// ---- AVX2 (runtime-detected; target attribute keeps the rest of the TU
// compiled for the baseline) ------------------------------------------------

__attribute__((target("avx2"))) size_t mismatch_avx2(const uint8_t* a,
                                                     const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const uint32_t neq =
        ~static_cast<uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (neq != 0) return i + static_cast<size_t>(__builtin_ctz(neq));
  }
  return i + mismatch_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void byte_sub_avx2(uint8_t* dst, const uint8_t* a,
                                                   const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_sub_epi8(va, vb));
  }
  byte_sub_scalar(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void byte_add_avx2(uint8_t* dst, const uint8_t* a,
                                                   const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_add_epi8(va, vb));
  }
  byte_add_scalar(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void fill_rgb_avx2(uint8_t* dst, size_t pixels,
                                                   uint8_t r, uint8_t g, uint8_t b) {
  const size_t total = pixels * 3;
  if (total < 2048) {  // see fill_rgb_sse2: staging cost dominates short runs
    fill_rgb_scalar(dst, pixels, r, g, b);
    return;
  }
  alignas(32) uint8_t pat[96];
  stage_rgb_pattern(pat, sizeof(pat), r, g, b);
  const __m256i v[3] = {
      _mm256_load_si256(reinterpret_cast<const __m256i*>(pat)),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(pat + 32)),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(pat + 64)),
  };
  size_t off = 0, phase = 0;
  for (; off + 32 <= total; off += 32) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + off), v[phase]);
    phase = phase == 2 ? 0 : phase + 1;
  }
  const uint8_t comp[3] = {r, g, b};
  for (; off < total; ++off) dst[off] = comp[off % 3];
}

__attribute__((target("avx2"))) void fill_f32_avx2(float* dst, size_t count,
                                                   float value) {
  const __m256 v = _mm256_set1_ps(value);
  size_t i = 0;
  for (; i + 8 <= count; i += 8) _mm256_storeu_ps(dst + i, v);
  for (; i < count; ++i) dst[i] = value;
}

__attribute__((target("avx2"))) void pack_rgb565_avx2(const uint8_t* rgb,
                                                      uint16_t* out, size_t pixels) {
  size_t i = 0;
  if (pixels >= 16) {
    // Per-channel gather masks: output lane p of channel c takes byte
    // 3p + c of the 48-byte group, from whichever 16-byte chunk holds it.
    alignas(16) int8_t gather[3][3][16];
    for (int c = 0; c < 3; ++c)
      for (int chunk = 0; chunk < 3; ++chunk)
        for (int p = 0; p < 16; ++p) {
          const int src = 3 * p + c - 16 * chunk;
          gather[c][chunk][p] = (src >= 0 && src < 16) ? static_cast<int8_t>(src)
                                                       : static_cast<int8_t>(-1);
        }
    __m128i gm[3][3];
    for (int c = 0; c < 3; ++c)
      for (int chunk = 0; chunk < 3; ++chunk)
        gm[c][chunk] = _mm_load_si128(reinterpret_cast<const __m128i*>(gather[c][chunk]));
    const __m128i zero = _mm_setzero_si128();
    for (; i + 16 <= pixels; i += 16) {
      const __m128i v0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rgb + i * 3));
      const __m128i v1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rgb + i * 3 + 16));
      const __m128i v2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rgb + i * 3 + 32));
      __m128i ch[3];
      for (int c = 0; c < 3; ++c)
        ch[c] = _mm_or_si128(_mm_or_si128(_mm_shuffle_epi8(v0, gm[c][0]),
                                          _mm_shuffle_epi8(v1, gm[c][1])),
                             _mm_shuffle_epi8(v2, gm[c][2]));
      for (int half = 0; half < 2; ++half) {
        const auto widen = [&](const __m128i& v) {
          return half == 0 ? _mm_unpacklo_epi8(v, zero) : _mm_unpackhi_epi8(v, zero);
        };
        const __m128i r16 = widen(ch[0]);
        const __m128i g16 = widen(ch[1]);
        const __m128i b16 = widen(ch[2]);
        // (r>>3)<<11 == (r&0xF8)<<8, (g>>2)<<5 == (g&0xFC)<<3 on u16 lanes.
        const __m128i code = _mm_or_si128(
            _mm_or_si128(_mm_slli_epi16(_mm_and_si128(r16, _mm_set1_epi16(0xF8)), 8),
                         _mm_slli_epi16(_mm_and_si128(g16, _mm_set1_epi16(0xFC)), 3)),
            _mm_srli_epi16(b16, 3));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + half * 8), code);
      }
    }
  }
  pack_rgb565_scalar(rgb + i * 3, out + i, pixels - i);
}

__attribute__((target("avx2"))) void depth_select_row_avx2(float* dd, const float* sd,
                                                           uint8_t* dc,
                                                           const uint8_t* sc,
                                                           int width) {
  int i = 0;
  // Colors are blended as two 16-byte halves (12 payload bytes each); the
  // second half's overrun must stay inside the row: i*3 + 28 <= width*3.
  for (; i + 10 <= width; i += 8) {
    const __m256 s = _mm256_loadu_ps(sd + i);
    const __m256 d = _mm256_loadu_ps(dd + i);
    const __m256 m = _mm256_cmp_ps(s, d, _CMP_LT_OQ);
    _mm256_storeu_ps(dd + i, _mm256_blendv_ps(d, s, m));
    const int bits = _mm256_movemask_ps(m);
    for (int half = 0; half < 2; ++half) {
      const int quad = (bits >> (half * 4)) & 0xF;
      if (quad == 0) continue;
      uint8_t* cd = dc + (i + half * 4) * 3;
      const uint8_t* cs = sc + (i + half * 4) * 3;
      const __m128i cm =
          _mm_load_si128(reinterpret_cast<const __m128i*>(kColorMask.m[quad]));
      const __m128i vs = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cs));
      const __m128i vd = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cd));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(cd), _mm_blendv_epi8(vd, vs, cm));
    }
  }
  depth_select_row_scalar(dd, sd, dc, sc, i, width);
}

#elif defined(RAVE_SIMD_NEON)

// ---- NEON (aarch64 baseline) ----------------------------------------------

size_t mismatch_neon(const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    // Narrow the byte mask to 4 bits per byte packed in a u64.
    const uint64_t mask = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)), 0);
    if (mask != ~0ull)
      return i + static_cast<size_t>(__builtin_ctzll(~mask) >> 2);
  }
  return i + mismatch_scalar(a + i, b + i, n - i);
}

void byte_sub_neon(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, vsubq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  byte_sub_scalar(dst + i, a + i, b + i, n - i);
}

void byte_add_neon(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, vaddq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  byte_add_scalar(dst + i, a + i, b + i, n - i);
}

void fill_rgb_neon(uint8_t* dst, size_t pixels, uint8_t r, uint8_t g, uint8_t b) {
  const size_t total = pixels * 3;
  if (total < 2048) {  // see fill_rgb_sse2: staging cost dominates short runs
    fill_rgb_scalar(dst, pixels, r, g, b);
    return;
  }
  alignas(16) uint8_t pat[48];
  stage_rgb_pattern(pat, sizeof(pat), r, g, b);
  const uint8x16_t v[3] = {vld1q_u8(pat), vld1q_u8(pat + 16), vld1q_u8(pat + 32)};
  size_t off = 0, phase = 0;
  for (; off + 16 <= total; off += 16) {
    vst1q_u8(dst + off, v[phase]);
    phase = phase == 2 ? 0 : phase + 1;
  }
  const uint8_t comp[3] = {r, g, b};
  for (; off < total; ++off) dst[off] = comp[off % 3];
}

void fill_f32_neon(float* dst, size_t count, float value) {
  const float32x4_t v = vdupq_n_f32(value);
  size_t i = 0;
  for (; i + 4 <= count; i += 4) vst1q_f32(dst + i, v);
  for (; i < count; ++i) dst[i] = value;
}

void pack_rgb565_neon(const uint8_t* rgb, uint16_t* out, size_t pixels) {
  size_t i = 0;
  for (; i + 16 <= pixels; i += 16) {
    const uint8x16x3_t px = vld3q_u8(rgb + i * 3);
    for (int half = 0; half < 2; ++half) {
      const auto widen = [&](const uint8x16_t& v) {
        return half == 0 ? vmovl_u8(vget_low_u8(v)) : vmovl_u8(vget_high_u8(v));
      };
      const uint16x8_t r16 = widen(px.val[0]);
      const uint16x8_t g16 = widen(px.val[1]);
      const uint16x8_t b16 = widen(px.val[2]);
      const uint16x8_t code = vorrq_u16(
          vorrq_u16(vshlq_n_u16(vandq_u16(r16, vdupq_n_u16(0xF8)), 8),
                    vshlq_n_u16(vandq_u16(g16, vdupq_n_u16(0xFC)), 3)),
          vshrq_n_u16(b16, 3));
      vst1q_u16(out + i + static_cast<size_t>(half) * 8, code);
    }
  }
  pack_rgb565_scalar(rgb + i * 3, out + i, pixels - i);
}

void depth_select_row_neon(float* dd, const float* sd, uint8_t* dc,
                           const uint8_t* sc, int width) {
  // Expand a 4-lane depth mask to 12 color-mask bytes (lanes 12..15 = 0xFF
  // beyond lane 3 would clobber, so the table maps them to lane-out = 0).
  static const uint8_t expand_idx[16] = {0, 0, 0, 4, 4, 4, 8,  8,
                                         8, 12, 12, 12, 16, 16, 16, 16};
  const uint8x16_t idx = vld1q_u8(expand_idx);
  int i = 0;
  for (; i + 6 <= width; i += 4) {
    const float32x4_t s = vld1q_f32(sd + i);
    const float32x4_t d = vld1q_f32(dd + i);
    const uint32x4_t m = vcltq_f32(s, d);
    vst1q_f32(dd + i, vbslq_f32(m, s, d));
    const uint8x16_t m8 = vreinterpretq_u8_u32(m);
    const uint8x16_t cm = vqtbl1q_u8(m8, idx);  // out-of-range index -> 0
    const uint8x16_t cs = vld1q_u8(sc + i * 3);
    const uint8x16_t cd = vld1q_u8(dc + i * 3);
    vst1q_u8(dc + i * 3, vbslq_u8(cm, cs, cd));
  }
  depth_select_row_scalar(dd, sd, dc, sc, i, width);
}

#endif  // RAVE_SIMD_NEON

}  // namespace

size_t mismatch(const uint8_t* a, const uint8_t* b, size_t n, SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: return mismatch_avx2(a, b, n);
    case SimdLevel::Sse2: return mismatch_sse2(a, b, n);
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: return mismatch_neon(a, b, n);
#endif
    default: return mismatch_scalar(a, b, n);
  }
}

void byte_sub(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n,
              SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: byte_sub_avx2(dst, a, b, n); return;
    case SimdLevel::Sse2: byte_sub_sse2(dst, a, b, n); return;
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: byte_sub_neon(dst, a, b, n); return;
#endif
    default: byte_sub_scalar(dst, a, b, n); return;
  }
}

void byte_add(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n,
              SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: byte_add_avx2(dst, a, b, n); return;
    case SimdLevel::Sse2: byte_add_sse2(dst, a, b, n); return;
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: byte_add_neon(dst, a, b, n); return;
#endif
    default: byte_add_scalar(dst, a, b, n); return;
  }
}

void fill_rgb(uint8_t* dst, size_t pixels, uint8_t r, uint8_t g, uint8_t b,
              SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: fill_rgb_avx2(dst, pixels, r, g, b); return;
    case SimdLevel::Sse2: fill_rgb_sse2(dst, pixels, r, g, b); return;
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: fill_rgb_neon(dst, pixels, r, g, b); return;
#endif
    default: fill_rgb_scalar(dst, pixels, r, g, b); return;
  }
}

void fill_f32(float* dst, size_t count, float value, SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: fill_f32_avx2(dst, count, value); return;
    case SimdLevel::Sse2: fill_f32_sse2(dst, count, value); return;
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: fill_f32_neon(dst, count, value); return;
#endif
    default:
      for (size_t i = 0; i < count; ++i) dst[i] = value;
      return;
  }
}

void pack_rgb565(const uint8_t* rgb, uint16_t* out, size_t pixels,
                 SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2: pack_rgb565_avx2(rgb, out, pixels); return;
    case SimdLevel::Sse2: break;  // no SSE2-only deinterleave; scalar pack
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon: pack_rgb565_neon(rgb, out, pixels); return;
#endif
    default: break;
  }
  pack_rgb565_scalar(rgb, out, pixels);
}

void depth_select_row(float* dst_depth, const float* src_depth, uint8_t* dst_rgb,
                      const uint8_t* src_rgb, int width, SimdLevel level) {
  switch (level) {
#if defined(RAVE_SIMD_X86)
    case SimdLevel::Avx2:
      depth_select_row_avx2(dst_depth, src_depth, dst_rgb, src_rgb, width);
      return;
    case SimdLevel::Sse2:
      depth_select_row_sse2(dst_depth, src_depth, dst_rgb, src_rgb, width);
      return;
#elif defined(RAVE_SIMD_NEON)
    case SimdLevel::Neon:
      depth_select_row_neon(dst_depth, src_depth, dst_rgb, src_rgb, width);
      return;
#endif
    default:
      depth_select_row_scalar(dst_depth, src_depth, dst_rgb, src_rgb, 0, width);
      return;
  }
}

}  // namespace simd
}  // namespace rave::util

// Portable SIMD dispatch layer. Every hot per-pixel/per-byte kernel in the
// renderer and the codecs has a vectorized body (SSE2/AVX2 on x86-64, NEON
// on aarch64) and a scalar twin that performs the *same* arithmetic per
// element, so the two are byte-identical on any input — the determinism
// guarantee the distributed tile/subset compositing relies on extends
// across instruction sets. The level is detected once at startup from the
// CPU and can be forced down with RAVE_SIMD=scalar|sse2|avx2|neon (or
// set_simd_level) for testing; requesting a level the host cannot execute
// falls back to scalar. See DESIGN.md "SIMD dispatch & determinism".
#pragma once

#include <cstddef>
#include <cstdint>

namespace rave::util {

enum class SimdLevel : uint8_t {
  Scalar = 0,
  Sse2 = 1,  // x86-64 baseline, 16-byte lanes
  Avx2 = 2,  // 32-byte lanes, needs CPU support
  Neon = 3,  // aarch64 baseline, 16-byte lanes
};

const char* simd_level_name(SimdLevel level);

// Highest level this binary can execute on this CPU (detected once).
SimdLevel max_simd_level();

// The level kernels dispatch on: max_simd_level() clamped by the RAVE_SIMD
// environment variable on first use; overridable with set_simd_level.
SimdLevel active_simd_level();

// Force a level (tests/benches). Clamped to what the host can execute:
// an unsupported request (wrong ISA family or missing CPU feature beyond
// the x86 baseline) degrades to Scalar, never to an illegal instruction.
void set_simd_level(SimdLevel level);

// Parse "scalar"|"sse2"|"avx2"|"neon" (case-sensitive). False on unknown.
bool parse_simd_level(const char* name, SimdLevel& out);

namespace simd {

// Index of the first byte where a[i] != b[i], or n if the ranges match.
// (With b = a + stride this scans run lengths: chain equality a[i]==a[i+stride]
// over i < k*stride is equivalent to elements 0..k all being equal.)
size_t mismatch(const uint8_t* a, const uint8_t* b, size_t n, SimdLevel level);

// dst[i] = a[i] - b[i] (mod 256). Ranges may alias only exactly (dst==a).
void byte_sub(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n,
              SimdLevel level);
// dst[i] = a[i] + b[i] (mod 256).
void byte_add(uint8_t* dst, const uint8_t* a, const uint8_t* b, size_t n,
              SimdLevel level);

// Fill `pixels` RGB triples (3*pixels bytes) with the byte pattern r,g,b.
void fill_rgb(uint8_t* dst, size_t pixels, uint8_t r, uint8_t g, uint8_t b,
              SimdLevel level);
// Fill `count` floats with `value`.
void fill_f32(float* dst, size_t count, float value, SimdLevel level);

// RGB888 -> RGB565: out[i] = (r>>3)<<11 | (g>>2)<<5 | (b>>3).
void pack_rgb565(const uint8_t* rgb, uint16_t* out, size_t pixels,
                 SimdLevel level);

// One compositor row: where src_depth[i] < dst_depth[i], copy depth and the
// RGB triple from src to dst. Pure compare/select — bit-exact by nature.
void depth_select_row(float* dst_depth, const float* src_depth,
                      uint8_t* dst_rgb, const uint8_t* src_rgb, int width,
                      SimdLevel level);

}  // namespace simd
}  // namespace rave::util

#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace rave::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  // Shared control block: helper tasks may be scheduled after the caller
  // has already drained every index (and returned), so the state they
  // touch must outlive this stack frame.
  struct Control {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto ctl = std::make_shared<Control>();
  const auto* fn_ptr = &fn;  // only dereferenced for indices < count

  const size_t helpers = std::min(count - 1, static_cast<size_t>(workers_.size()));
  for (size_t h = 0; h < helpers; ++h) {
    submit([ctl, count, fn_ptr] {
      for (;;) {
        const size_t i = ctl->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        (*fn_ptr)(i);
        if (ctl->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
          std::lock_guard lock(ctl->mu);
          ctl->cv.notify_all();
        }
      }
    });
  }
  // The caller drains the same chunk queue instead of blocking: a pool
  // worker calling parallel_for still makes progress even when every
  // other worker is busy (or itself blocked in a nested call).
  for (;;) {
    const size_t i = ctl->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
    ctl->done.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock lock(ctl->mu);
  ctl->cv.wait(lock, [&] { return ctl->done.load(std::memory_order_acquire) == count; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rave::util

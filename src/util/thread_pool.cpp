#include "util/thread_pool.hpp"

#include <atomic>

namespace rave::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const size_t workers = std::min<size_t>(count, workers_.size());
  for (size_t w = 0; w < workers; ++w) {
    submit([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        fn(i);
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
          std::lock_guard lock(done_mu);
          done_cv.notify_all();
        }
      }
    });
  }
  std::unique_lock lock(done_mu);
  done_cv.wait(lock, [&] { return done.load(std::memory_order_acquire) == count; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rave::util

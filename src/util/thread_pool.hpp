// Fixed-size worker pool shared by the rendering substrate: the rasterizer
// parallelises over framebuffer tiles, the ray-caster over scanline rows,
// and the compositor over row bands — all bit-deterministic because work
// items never share pixels. parallel_for fans an index range out to the
// workers *and* to the calling thread: the caller drains the same chunk
// queue, so it is safe to call from a pool worker (nested use makes
// progress even when every other worker is busy or blocked in its own
// parallel_for). All parallelism is explicit (tasks are submitted, futures
// joined) in the message-passing spirit of the substrate.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rave::util {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  template <typename F>
  auto submit_future(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  // Run fn(i) for i in [0, count) across the pool and the calling thread,
  // returning once every index has completed. Reentrant: may be called
  // from inside a pool task (the caller helps drain its own range rather
  // than parking a worker slot).
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace rave::util

// Small fixed-size linear algebra used throughout RAVE: 3/4-component
// vectors, 4x4 column-major matrices, and axis-aligned bounding boxes.
// Deliberately minimal — only the operations the scene graph, rasterizer
// and camera math need.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rave::util {

struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }

  [[nodiscard]] float length() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] float length_sq() const { return x * x + y * y + z * z; }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

constexpr float dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline Vec3 normalize(const Vec3& v) {
  const float len = v.length();
  if (len <= std::numeric_limits<float>::min()) return {0.0f, 0.0f, 0.0f};
  return v / len;
}

constexpr Vec3 lerp(const Vec3& a, const Vec3& b, float t) { return a + (b - a) * t; }

constexpr Vec3 min_elem(const Vec3& a, const Vec3& b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

constexpr Vec3 max_elem(const Vec3& a, const Vec3& b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

struct Vec4 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float w = 0.0f;

  constexpr Vec4() = default;
  constexpr Vec4(float xx, float yy, float zz, float ww) : x(xx), y(yy), z(zz), w(ww) {}
  constexpr Vec4(const Vec3& v, float ww) : x(v.x), y(v.y), z(v.z), w(ww) {}

  constexpr Vec4 operator+(const Vec4& o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
  constexpr Vec4 operator-(const Vec4& o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
  constexpr Vec4 operator*(float s) const { return {x * s, y * s, z * s, w * s}; }

  [[nodiscard]] constexpr Vec3 xyz() const { return {x, y, z}; }
};

constexpr Vec4 lerp(const Vec4& a, const Vec4& b, float t) { return a + (b - a) * t; }

// Column-major 4x4 matrix: m[col * 4 + row], matching OpenGL conventions.
struct Mat4 {
  std::array<float, 16> m{};

  static constexpr Mat4 identity() {
    Mat4 r;
    r.m[0] = r.m[5] = r.m[10] = r.m[15] = 1.0f;
    return r;
  }

  float& at(int row, int col) { return m[col * 4 + row]; }
  [[nodiscard]] float at(int row, int col) const { return m[col * 4 + row]; }

  constexpr bool operator==(const Mat4& o) const { return m == o.m; }

  Mat4 operator*(const Mat4& o) const {
    Mat4 r;
    for (int c = 0; c < 4; ++c) {
      for (int rr = 0; rr < 4; ++rr) {
        float sum = 0.0f;
        for (int k = 0; k < 4; ++k) sum += at(rr, k) * o.at(k, c);
        r.at(rr, c) = sum;
      }
    }
    return r;
  }

  Vec4 operator*(const Vec4& v) const {
    return {
        m[0] * v.x + m[4] * v.y + m[8] * v.z + m[12] * v.w,
        m[1] * v.x + m[5] * v.y + m[9] * v.z + m[13] * v.w,
        m[2] * v.x + m[6] * v.y + m[10] * v.z + m[14] * v.w,
        m[3] * v.x + m[7] * v.y + m[11] * v.z + m[15] * v.w,
    };
  }

  // Transform a point (w = 1) and drop the homogeneous coordinate.
  [[nodiscard]] Vec3 transform_point(const Vec3& p) const {
    const Vec4 r = (*this) * Vec4(p, 1.0f);
    return r.xyz();
  }

  // Transform a direction (w = 0).
  [[nodiscard]] Vec3 transform_dir(const Vec3& d) const {
    const Vec4 r = (*this) * Vec4(d, 0.0f);
    return r.xyz();
  }

  static Mat4 translate(const Vec3& t) {
    Mat4 r = identity();
    r.m[12] = t.x;
    r.m[13] = t.y;
    r.m[14] = t.z;
    return r;
  }

  static Mat4 scale(const Vec3& s) {
    Mat4 r = identity();
    r.m[0] = s.x;
    r.m[5] = s.y;
    r.m[10] = s.z;
    return r;
  }

  static Mat4 rotate_x(float radians) {
    Mat4 r = identity();
    const float c = std::cos(radians);
    const float s = std::sin(radians);
    r.at(1, 1) = c;
    r.at(1, 2) = -s;
    r.at(2, 1) = s;
    r.at(2, 2) = c;
    return r;
  }

  static Mat4 rotate_y(float radians) {
    Mat4 r = identity();
    const float c = std::cos(radians);
    const float s = std::sin(radians);
    r.at(0, 0) = c;
    r.at(0, 2) = s;
    r.at(2, 0) = -s;
    r.at(2, 2) = c;
    return r;
  }

  static Mat4 rotate_z(float radians) {
    Mat4 r = identity();
    const float c = std::cos(radians);
    const float s = std::sin(radians);
    r.at(0, 0) = c;
    r.at(0, 1) = -s;
    r.at(1, 0) = s;
    r.at(1, 1) = c;
    return r;
  }

  // Right-handed look-at view matrix (camera at eye, looking at target).
  static Mat4 look_at(const Vec3& eye, const Vec3& target, const Vec3& up) {
    const Vec3 f = normalize(target - eye);
    const Vec3 s = normalize(cross(f, up));
    const Vec3 u = cross(s, f);
    Mat4 r = identity();
    r.at(0, 0) = s.x;
    r.at(0, 1) = s.y;
    r.at(0, 2) = s.z;
    r.at(1, 0) = u.x;
    r.at(1, 1) = u.y;
    r.at(1, 2) = u.z;
    r.at(2, 0) = -f.x;
    r.at(2, 1) = -f.y;
    r.at(2, 2) = -f.z;
    r.at(0, 3) = -dot(s, eye);
    r.at(1, 3) = -dot(u, eye);
    r.at(2, 3) = dot(f, eye);
    return r;
  }

  // Right-handed perspective projection mapping z into [-1, 1].
  static Mat4 perspective(float fovy_radians, float aspect, float znear, float zfar) {
    const float f = 1.0f / std::tan(fovy_radians / 2.0f);
    Mat4 r;
    r.at(0, 0) = f / aspect;
    r.at(1, 1) = f;
    r.at(2, 2) = (zfar + znear) / (znear - zfar);
    r.at(2, 3) = (2.0f * zfar * znear) / (znear - zfar);
    r.at(3, 2) = -1.0f;
    return r;
  }

  [[nodiscard]] Mat4 transposed() const {
    Mat4 r;
    for (int c = 0; c < 4; ++c)
      for (int rr = 0; rr < 4; ++rr) r.at(c, rr) = at(rr, c);
    return r;
  }

  // General inverse via cofactor expansion; returns identity for singular
  // input (scene transforms are always invertible in practice).
  [[nodiscard]] Mat4 inverse() const;
};

struct Aabb {
  Vec3 lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
          std::numeric_limits<float>::max()};
  Vec3 hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
          std::numeric_limits<float>::lowest()};

  [[nodiscard]] bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  void extend(const Vec3& p) {
    lo = min_elem(lo, p);
    hi = max_elem(hi, p);
  }

  void extend(const Aabb& b) {
    if (!b.valid()) return;
    extend(b.lo);
    extend(b.hi);
  }

  [[nodiscard]] Vec3 center() const { return (lo + hi) * 0.5f; }
  [[nodiscard]] Vec3 extent() const { return hi - lo; }

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z && p.z <= hi.z;
  }

  [[nodiscard]] bool intersects(const Aabb& o) const {
    return valid() && o.valid() && lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y &&
           hi.y >= o.lo.y && lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  // Bounding box of this box under an affine transform.
  [[nodiscard]] Aabb transformed(const Mat4& m) const {
    Aabb out;
    if (!valid()) return out;
    for (int i = 0; i < 8; ++i) {
      const Vec3 corner{(i & 1) ? hi.x : lo.x, (i & 2) ? hi.y : lo.y, (i & 4) ? hi.z : lo.z};
      out.extend(m.transform_point(corner));
    }
    return out;
  }
};

inline Mat4 Mat4::inverse() const {
  // Adapted from the classic MESA gluInvertMatrix cofactor expansion.
  const auto& a = m;
  std::array<float, 16> inv;
  inv[0] = a[5] * a[10] * a[15] - a[5] * a[11] * a[14] - a[9] * a[6] * a[15] +
           a[9] * a[7] * a[14] + a[13] * a[6] * a[11] - a[13] * a[7] * a[10];
  inv[4] = -a[4] * a[10] * a[15] + a[4] * a[11] * a[14] + a[8] * a[6] * a[15] -
           a[8] * a[7] * a[14] - a[12] * a[6] * a[11] + a[12] * a[7] * a[10];
  inv[8] = a[4] * a[9] * a[15] - a[4] * a[11] * a[13] - a[8] * a[5] * a[15] +
           a[8] * a[7] * a[13] + a[12] * a[5] * a[11] - a[12] * a[7] * a[9];
  inv[12] = -a[4] * a[9] * a[14] + a[4] * a[10] * a[13] + a[8] * a[5] * a[14] -
            a[8] * a[6] * a[13] - a[12] * a[5] * a[10] + a[12] * a[6] * a[9];
  inv[1] = -a[1] * a[10] * a[15] + a[1] * a[11] * a[14] + a[9] * a[2] * a[15] -
           a[9] * a[3] * a[14] - a[13] * a[2] * a[11] + a[13] * a[3] * a[10];
  inv[5] = a[0] * a[10] * a[15] - a[0] * a[11] * a[14] - a[8] * a[2] * a[15] +
           a[8] * a[3] * a[14] + a[12] * a[2] * a[11] - a[12] * a[3] * a[10];
  inv[9] = -a[0] * a[9] * a[15] + a[0] * a[11] * a[13] + a[8] * a[1] * a[15] -
           a[8] * a[3] * a[13] - a[12] * a[1] * a[11] + a[12] * a[3] * a[9];
  inv[13] = a[0] * a[9] * a[14] - a[0] * a[10] * a[13] - a[8] * a[1] * a[14] +
            a[8] * a[2] * a[13] + a[12] * a[1] * a[10] - a[12] * a[2] * a[9];
  inv[2] = a[1] * a[6] * a[15] - a[1] * a[7] * a[14] - a[5] * a[2] * a[15] +
           a[5] * a[3] * a[14] + a[13] * a[2] * a[7] - a[13] * a[3] * a[6];
  inv[6] = -a[0] * a[6] * a[15] + a[0] * a[7] * a[14] + a[4] * a[2] * a[15] -
           a[4] * a[3] * a[14] - a[12] * a[2] * a[7] + a[12] * a[3] * a[6];
  inv[10] = a[0] * a[5] * a[15] - a[0] * a[7] * a[13] - a[4] * a[1] * a[15] +
            a[4] * a[3] * a[13] + a[12] * a[1] * a[7] - a[12] * a[3] * a[5];
  inv[14] = -a[0] * a[5] * a[14] + a[0] * a[6] * a[13] + a[4] * a[1] * a[14] -
            a[4] * a[2] * a[13] - a[12] * a[1] * a[6] + a[12] * a[2] * a[5];
  inv[3] = -a[1] * a[6] * a[11] + a[1] * a[7] * a[10] + a[5] * a[2] * a[11] -
           a[5] * a[3] * a[10] - a[9] * a[2] * a[7] + a[9] * a[3] * a[6];
  inv[7] = a[0] * a[6] * a[11] - a[0] * a[7] * a[10] - a[4] * a[2] * a[11] +
           a[4] * a[3] * a[10] + a[8] * a[2] * a[7] - a[8] * a[3] * a[6];
  inv[11] = -a[0] * a[5] * a[11] + a[0] * a[7] * a[9] + a[4] * a[1] * a[11] -
            a[4] * a[3] * a[9] - a[8] * a[1] * a[7] + a[8] * a[3] * a[5];
  inv[15] = a[0] * a[5] * a[10] - a[0] * a[6] * a[9] - a[4] * a[1] * a[10] +
            a[4] * a[2] * a[9] + a[8] * a[1] * a[6] - a[8] * a[2] * a[5];

  float det = a[0] * inv[0] + a[1] * inv[4] + a[2] * inv[8] + a[3] * inv[12];
  if (std::fabs(det) < 1e-12f) return identity();
  det = 1.0f / det;
  Mat4 out;
  for (int i = 0; i < 16; ++i) out.m[i] = inv[i] * det;
  return out;
}

constexpr float kPi = 3.14159265358979323846f;

constexpr float deg_to_rad(float deg) { return deg * (kPi / 180.0f); }

}  // namespace rave::util

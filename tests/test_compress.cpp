// Image-codec tests: lossless round trips, delta coding against previous
// frames, quantization bounds, and adaptive selection under bandwidth
// pressure (the paper's §5.1/§6 compression requirement).
#include <gtest/gtest.h>

#include "compress/adaptive.hpp"
#include "compress/codec.hpp"
#include "util/hash.hpp"
#include "util/simd.hpp"

namespace rave::compress {
namespace {

Image gradient_image(int w, int h, int seed = 0) {
  Image img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.set_pixel(x, y, static_cast<uint8_t>((x * 3 + seed) & 0xFF),
                    static_cast<uint8_t>((y * 5 + seed) & 0xFF),
                    static_cast<uint8_t>((x + y + seed) & 0xFF));
  return img;
}

Image flat_image(int w, int h, uint8_t value) {
  Image img(w, h);
  std::fill(img.rgb.begin(), img.rgb.end(), value);
  return img;
}

class LosslessCodecTest : public testing::TestWithParam<CodecKind> {};

TEST_P(LosslessCodecTest, RoundTripExact) {
  const Image original = gradient_image(37, 23);
  auto codec = make_codec(GetParam());
  const EncodedImage encoded = codec->encode(original, nullptr);
  auto decoded = codec->decode(encoded, nullptr);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().rgb, original.rgb);
}

INSTANTIATE_TEST_SUITE_P(Kinds, LosslessCodecTest,
                         testing::Values(CodecKind::Raw, CodecKind::Rle, CodecKind::Delta),
                         [](const auto& info) { return codec_name(info.param); });

TEST(Rle, CompressesFlatImagesHard) {
  const Image flat = flat_image(100, 100, 42);
  const EncodedImage encoded = make_codec(CodecKind::Rle)->encode(flat, nullptr);
  EXPECT_LT(encoded.data.size(), flat.rgb.size() / 50);
}

TEST(Rle, WorstCaseBounded) {
  // Adversarial: every pixel different → 4 bytes per pixel (33% expansion).
  Image noisy(16, 16);
  for (size_t i = 0; i < noisy.rgb.size(); ++i) noisy.rgb[i] = static_cast<uint8_t>(i * 97 + 13);
  const EncodedImage encoded = make_codec(CodecKind::Rle)->encode(noisy, nullptr);
  EXPECT_LE(encoded.data.size(), noisy.rgb.size() * 4 / 3 + 16);
}

TEST(Delta, SmallChangesEncodeTiny) {
  const Image frame0 = gradient_image(64, 64);
  Image frame1 = frame0;
  frame1.set_pixel(10, 10, 255, 255, 255);  // one pixel moved
  auto codec = make_codec(CodecKind::Delta);
  const EncodedImage key = codec->encode(frame0, nullptr);
  const EncodedImage delta = codec->encode(frame1, &frame0);
  EXPECT_TRUE(key.keyframe);
  EXPECT_FALSE(delta.keyframe);
  EXPECT_LT(delta.data.size(), key.data.size() / 10);
  auto decoded = codec->decode(delta, &frame0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rgb, frame1.rgb);
}

TEST(Delta, MissingPreviousFrameFails) {
  const Image frame0 = gradient_image(8, 8);
  const Image frame1 = gradient_image(8, 8, 3);
  auto codec = make_codec(CodecKind::Delta);
  const EncodedImage delta = codec->encode(frame1, &frame0);
  EXPECT_FALSE(codec->decode(delta, nullptr).ok());
}

TEST(Quantize, LossyButClose) {
  const Image original = gradient_image(32, 32);
  auto codec = make_codec(CodecKind::Quantize);
  const EncodedImage encoded = codec->encode(original, nullptr);
  auto decoded = codec->decode(encoded, nullptr);
  ASSERT_TRUE(decoded.ok());
  // RGB565: max channel error 8 (5-bit) / 4 (6-bit).
  for (size_t i = 0; i < original.rgb.size(); ++i) {
    EXPECT_LE(std::abs(static_cast<int>(original.rgb[i]) -
                       static_cast<int>(decoded.value().rgb[i])),
              8)
        << i;
  }
}

TEST(EncodedImage, SerializeRoundTrip) {
  EncodedImage encoded;
  encoded.codec = CodecKind::Delta;
  encoded.keyframe = false;
  encoded.width = 320;
  encoded.height = 240;
  encoded.data = {9, 8, 7};
  auto back = EncodedImage::deserialize(encoded.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().codec, CodecKind::Delta);
  EXPECT_FALSE(back.value().keyframe);
  EXPECT_EQ(back.value().width, 320);
  EXPECT_EQ(back.value().data, encoded.data);
}

TEST(Adaptive, GenerousBandwidthStaysLossless) {
  AdaptiveConfig config;
  config.target_fps = 5.0;
  config.initial_bandwidth_Bps = 100e6;
  AdaptiveEncoder encoder(config);
  AdaptiveDecoder decoder;
  const Image frame = gradient_image(64, 64);
  const EncodedImage encoded = encoder.encode(frame);
  auto decoded = decoder.decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rgb, frame.rgb);  // lossless under headroom
}

TEST(Adaptive, TightBandwidthDegradesToLossy) {
  AdaptiveConfig config;
  config.target_fps = 10.0;
  config.initial_bandwidth_Bps = 20'000;  // only quantize+RLE can fit
  AdaptiveEncoder encoder(config);
  // Banded gradient: lossless RLE shrinks it somewhat, quantization merges
  // neighbouring bands into long runs.
  Image banded(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x)
      banded.set_pixel(x, y, static_cast<uint8_t>((x / 4) * 16),
                       static_cast<uint8_t>((y / 8) * 30), 60);
  const EncodedImage encoded = encoder.encode(banded);
  EXPECT_EQ(encoded.codec, CodecKind::Quantize);
  EXPECT_LT(encoded.byte_size(), banded.byte_size() / 2);
}

TEST(Adaptive, NothingFitsFallsBackToSmallest) {
  AdaptiveConfig config;
  config.target_fps = 10.0;
  config.initial_bandwidth_Bps = 100;  // nothing fits 10 bytes/frame
  AdaptiveEncoder encoder(config);
  Image noisy(16, 16);
  for (size_t i = 0; i < noisy.rgb.size(); ++i) noisy.rgb[i] = static_cast<uint8_t>(i * 31);
  AdaptiveDecoder decoder;
  const EncodedImage encoded = encoder.encode(noisy);
  // Pure noise compresses nowhere: the fallback is the smallest candidate
  // and the stream stays decodable.
  EXPECT_TRUE(decoder.decode(encoded).ok());
}

TEST(Adaptive, TracksBandwidthWithEwma) {
  AdaptiveConfig config;
  config.initial_bandwidth_Bps = 1e6;
  config.ewma_alpha = 0.5;
  AdaptiveEncoder encoder(config);
  encoder.observe_transfer(100'000, 1.0);  // 100 KB/s observed
  EXPECT_NEAR(encoder.bandwidth_estimate_Bps(), 550e3, 1e3);
  encoder.observe_transfer(100'000, 1.0);
  EXPECT_LT(encoder.bandwidth_estimate_Bps(), 400e3);
}

TEST(Adaptive, FrameSequenceStreamsDeltas) {
  // A mostly-static interactive sequence should settle into cheap deltas.
  AdaptiveConfig config;
  config.target_fps = 5.0;
  config.initial_bandwidth_Bps = 580e3;  // the paper's wireless reality
  AdaptiveEncoder encoder(config);
  AdaptiveDecoder decoder;
  Image frame = flat_image(200, 200, 30);
  uint64_t total_bytes = 0;
  for (int i = 0; i < 5; ++i) {
    frame.set_pixel(50 + i, 50, 255, 0, 0);  // small motion
    const EncodedImage encoded = encoder.encode(frame);
    total_bytes += encoded.byte_size();
    auto decoded = decoder.decode(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error();
    EXPECT_EQ(decoded.value().rgb, frame.rgb);
  }
  // Raw would be 5 * 120 KB = 600 KB; adaptive should be far smaller.
  EXPECT_LT(total_bytes, 100'000u);
}

TEST(ContentHash, StableAcrossSimdLevelsAndEqualsSerializedBytes) {
  // The fan-out tier's memo keys and tile refs assume content_hash is a
  // pure function of the encoded bytes — identical whatever SIMD level
  // encoded them, and identical to hashing serialize()'s output.
  const util::SimdLevel before = util::active_simd_level();
  const Image original = gradient_image(64, 48, 7);
  std::vector<uint64_t> hashes;
  for (const util::SimdLevel level :
       {util::SimdLevel::Scalar, util::SimdLevel::Sse2, util::SimdLevel::Avx2,
        util::SimdLevel::Neon}) {
    util::set_simd_level(level);
    for (const CodecKind kind : {CodecKind::Raw, CodecKind::Rle, CodecKind::Quantize}) {
      const EncodedImage encoded = make_codec(kind)->encode(original, nullptr);
      const uint64_t hash = encoded.content_hash();
      hashes.push_back(hash);
      // Same value as FNV-1a over the serialized wire bytes.
      uint64_t wire_hash = util::kFnvOffsetBasis;
      const std::vector<uint8_t> wire = encoded.serialize();
      wire_hash = util::fnv1a(wire_hash, wire.data(), wire.size());
      EXPECT_EQ(hash, wire_hash) << codec_name(kind);
    }
  }
  util::set_simd_level(before);
  // Per codec, every level produced the same hash (levels the host lacks
  // clamp to scalar — still the same value, which is the point).
  const size_t per_level = 3;
  for (size_t i = per_level; i < hashes.size(); ++i)
    EXPECT_EQ(hashes[i], hashes[i % per_level]) << "codec slot " << i % per_level;
  // And distinct codecs address distinct content.
  EXPECT_NE(hashes[0], hashes[1]);
  EXPECT_NE(hashes[1], hashes[2]);
}

}  // namespace
}  // namespace rave::compress

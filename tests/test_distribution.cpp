// Workload distribution and migration planning tests — the paper's core
// contribution (§3.2.5, §3.2.7), tested as pure logic.
#include <gtest/gtest.h>

#include "core/capacity.hpp"
#include "core/distribution.hpp"
#include "core/migration.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

RenderCapacity capacity_of(double polys_per_sec, uint64_t texture = 256ull << 20) {
  RenderCapacity cap;
  cap.polygons_per_sec = polys_per_sec;
  cap.texture_mem_bytes = texture;
  return cap;
}

NodeCost cost_of(scene::NodeId id, uint64_t triangles, uint64_t texture = 0) {
  NodeCost cost;
  cost.node = id;
  cost.triangles = triangles;
  cost.texture_bytes = texture;
  return cost;
}

TEST(LoadTracker, EwmaAndHysteresis) {
  LoadTracker tracker({.low_fps = 10, .high_fps = 30, .sustain_seconds = 1.0, .ewma_alpha = 1.0});
  tracker.record_frame(1.0 / 5.0, 0.0);  // 5 fps — below low
  EXPECT_FALSE(tracker.overloaded(0.5));  // not sustained yet
  tracker.record_frame(1.0 / 5.0, 1.2);
  EXPECT_TRUE(tracker.overloaded(1.2));
  // Recovery clears the overload band.
  tracker.record_frame(1.0 / 20.0, 1.3);
  EXPECT_FALSE(tracker.overloaded(3.0));
  // Sustained high fps → underloaded.
  tracker.record_frame(1.0 / 50.0, 2.0);
  tracker.record_frame(1.0 / 50.0, 3.5);
  EXPECT_TRUE(tracker.underloaded(3.5));
}

TEST(LoadTracker, SpikesAreSmoothedOut) {
  // "for a given amount of time, to smooth out spikes of usage" (§3.2.7)
  LoadTracker tracker({.low_fps = 10, .high_fps = 30, .sustain_seconds = 1.0, .ewma_alpha = 0.3});
  for (int i = 0; i < 20; ++i) tracker.record_frame(1.0 / 20.0, i * 0.05);
  // One bad frame must not flip the tracker to overloaded.
  tracker.record_frame(1.0 / 2.0, 1.0);
  EXPECT_GT(tracker.fps(), 10.0);
  EXPECT_FALSE(tracker.overloaded(2.5));
}

TEST(NodeCost, WorkUnitsWeightPayloads) {
  NodeCost tris = cost_of(1, 1000);
  NodeCost points;
  points.points = 1000;
  NodeCost voxels;
  voxels.voxels = 1000;
  EXPECT_GT(tris.work_units(), points.work_units());
  EXPECT_GT(points.work_units(), voxels.work_units());
}

TEST(PayloadCosts, ComputedFromTree) {
  scene::SceneTree tree;
  tree.add_child(scene::kRootNode, "mesh", mesh::make_uv_sphere(1.0f, 16, 12));
  const auto costs = payload_costs(tree);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(costs[0].triangles, 2u * 16u * 11u);
}

TEST(Distribution, SingleServiceTakesAll) {
  const std::vector<NodeCost> nodes{cost_of(2, 1000), cost_of(3, 2000)};
  const std::vector<ServiceSlot> services{{1, capacity_of(1e6)}};
  const DistributionPlan plan = plan_distribution(nodes, services, 15.0);
  ASSERT_TRUE(plan.feasible) << plan.refusal_reason;
  ASSERT_EQ(plan.assignments.size(), 1u);
  EXPECT_EQ(plan.assignments[0].nodes.size(), 2u);
}

TEST(Distribution, SplitsAcrossServicesByCapacity) {
  // 6 nodes of 10k triangles; two services whose budgets hold 3 each at
  // 15 fps (450k polys/sec → 30k/frame).
  std::vector<NodeCost> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(cost_of(10 + i, 10'000));
  const std::vector<ServiceSlot> services{{1, capacity_of(450'000)}, {2, capacity_of(450'000)}};
  const DistributionPlan plan = plan_distribution(nodes, services, 15.0);
  ASSERT_TRUE(plan.feasible) << plan.refusal_reason;
  ASSERT_EQ(plan.assignments.size(), 2u);
  EXPECT_EQ(plan.assignments[0].nodes.size(), 3u);
  EXPECT_EQ(plan.assignments[1].nodes.size(), 3u);
}

TEST(Distribution, StrongerServiceGetsMoreWork) {
  std::vector<NodeCost> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(cost_of(10 + i, 10'000));
  const std::vector<ServiceSlot> services{{1, capacity_of(1.2e6)}, {2, capacity_of(0.4e6)}};
  const DistributionPlan plan = plan_distribution(nodes, services, 15.0);
  ASSERT_TRUE(plan.feasible);
  const auto* strong = plan.assignment_for(1);
  const auto* weak = plan.assignment_for(2);
  ASSERT_NE(strong, nullptr);
  ASSERT_NE(weak, nullptr);
  EXPECT_GT(strong->nodes.size(), weak->nodes.size());
}

TEST(Distribution, RefusesWithExplanatoryError) {
  // "if insufficient resources are available, the request is refused with
  // an explanatory error message" (§3.2.5).
  const std::vector<NodeCost> nodes{cost_of(2, 10'000'000)};
  const std::vector<ServiceSlot> services{{1, capacity_of(1e6)}};
  const DistributionPlan plan = plan_distribution(nodes, services, 15.0);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.refusal_reason.find("insufficient rendering capacity"), std::string::npos);
  EXPECT_NE(plan.refusal_reason.find("triangles"), std::string::npos);
  EXPECT_TRUE(plan.assignments.empty());
}

TEST(Distribution, NoServicesRefused) {
  const DistributionPlan plan = plan_distribution({cost_of(2, 10)}, {}, 15.0);
  EXPECT_FALSE(plan.feasible);
}

TEST(Distribution, TextureMemoryConstraintRespected) {
  // Both nodes fit the polygon budget of service 1 but not its texture
  // memory; the second node must land on service 2.
  const std::vector<NodeCost> nodes{cost_of(2, 1000, 100 << 20), cost_of(3, 1000, 100 << 20)};
  const std::vector<ServiceSlot> services{{1, capacity_of(1e9, 150ull << 20)},
                                          {2, capacity_of(1e9, 150ull << 20)}};
  const DistributionPlan plan = plan_distribution(nodes, services, 15.0);
  ASSERT_TRUE(plan.feasible) << plan.refusal_reason;
  EXPECT_EQ(plan.assignments.size(), 2u);
}

TEST(SelectNodesToMove, CoversDeficitWithoutOvershoot) {
  std::vector<NodeCost> assigned{cost_of(1, 100'000), cost_of(2, 5'000), cost_of(3, 4'000),
                                 cost_of(4, 3'000)};
  // Receiver has room for 10k; deficit is 8k. The 100k node must never be
  // chosen ("we do not want to add 100k polygons by mistake", §3.2.7).
  const auto moved = select_nodes_to_move(assigned, 8'000, 10'000);
  ASSERT_FALSE(moved.empty());
  double total = 0;
  for (const NodeCost& n : moved) {
    EXPECT_NE(n.node, 1u);
    total += n.work_units();
  }
  EXPECT_GE(total, 7'000.0);
  EXPECT_LE(total, 10'000.0);
}

TEST(SelectNodesToMove, EmptyWhenNothingFits) {
  std::vector<NodeCost> assigned{cost_of(1, 100'000)};
  EXPECT_TRUE(select_nodes_to_move(assigned, 8'000, 10'000).empty());
  EXPECT_TRUE(select_nodes_to_move({}, 8'000, 10'000).empty());
}

TEST(PlanTiles, WeightsByFillCapacity) {
  const std::vector<ServiceSlot> services{{1, capacity_of(3e6)}, {2, capacity_of(1e6)}};
  const auto tiles = plan_tiles(100, 100, services);
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_GT(tiles[0].pixel_count(), tiles[1].pixel_count());
}

ServiceLoadView make_view(uint64_t id, double capacity, std::vector<NodeCost> assigned,
                          bool over = false, bool under = false) {
  ServiceLoadView view;
  view.subscriber_id = id;
  view.capacity = capacity_of(capacity);
  view.assigned = std::move(assigned);
  view.overloaded = over;
  view.underloaded = under;
  return view;
}

TEST(Migration, OverloadedShedsToSpareService) {
  // Service 1 holds 60k of work but only fits 30k/frame; service 2 idles.
  std::vector<NodeCost> heavy;
  for (int i = 0; i < 6; ++i) heavy.push_back(cost_of(10 + i, 10'000));
  auto actions = plan_migration(
      {make_view(1, 450'000, heavy, /*over=*/true), make_view(2, 450'000, {})},
      {.target_fps = 15.0});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, MigrationAction::Kind::MoveNodes);
  EXPECT_EQ(actions[0].from, 1u);
  EXPECT_EQ(actions[0].to, 2u);
  double moved = 0;
  for (const NodeCost& n : actions[0].nodes) moved += n.work_units();
  EXPECT_GE(moved, 20'000.0);  // roughly the deficit
}

TEST(Migration, NoSpareCapacityTriggersRecruitment) {
  std::vector<NodeCost> heavy{cost_of(2, 50'000), cost_of(3, 50'000)};
  std::vector<NodeCost> also_full{cost_of(4, 28'000)};
  auto actions = plan_migration(
      {make_view(1, 450'000, heavy, /*over=*/true),
       make_view(2, 450'000, also_full, /*over=*/true)},
      {.target_fps = 15.0});
  const bool recruit = std::any_of(actions.begin(), actions.end(), [](const MigrationAction& a) {
    return a.kind == MigrationAction::Kind::RecruitNeeded;
  });
  EXPECT_TRUE(recruit);
}

TEST(Migration, UnderloadedPullsFromMostLoaded) {
  std::vector<NodeCost> busy;
  for (int i = 0; i < 8; ++i) busy.push_back(cost_of(10 + i, 3'000));
  auto actions = plan_migration(
      {make_view(1, 450'000, busy), make_view(2, 450'000, {}, false, /*under=*/true)},
      {.target_fps = 15.0});
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, MigrationAction::Kind::MoveNodes);
  EXPECT_EQ(actions[0].from, 1u);
  EXPECT_EQ(actions[0].to, 2u);
  EXPECT_LT(actions[0].nodes.size(), busy.size());  // balances, not steals all
}

TEST(Migration, IdleUnderloadedMarkedAvailable) {
  // "If no more nodes can be added, the service is marked as available to
  // support other overloaded services" (§3.2.7).
  auto actions = plan_migration(
      {make_view(1, 450'000, {cost_of(2, 100)}),
       make_view(2, 450'000, {cost_of(3, 100)}, false, /*under=*/true)},
      {.target_fps = 15.0});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, MigrationAction::Kind::MarkAvailable);
}

TEST(Migration, StableSystemPlansNothing) {
  auto actions = plan_migration(
      {make_view(1, 450'000, {cost_of(2, 10'000)}), make_view(2, 450'000, {cost_of(3, 9'000)})},
      {.target_fps = 15.0});
  EXPECT_TRUE(actions.empty());
}

TEST(Migration, MoveNeverOvershootsReceiverBudget) {
  // Receiver headroom is tiny; the mover must respect it even under a big
  // deficit.
  std::vector<NodeCost> heavy;
  for (int i = 0; i < 10; ++i) heavy.push_back(cost_of(10 + i, 20'000));
  std::vector<NodeCost> nearly_full{cost_of(30, 25'000)};
  auto actions = plan_migration(
      {make_view(1, 450'000, heavy, /*over=*/true), make_view(2, 450'000, nearly_full)},
      {.target_fps = 15.0});
  for (const MigrationAction& action : actions) {
    if (action.kind != MigrationAction::Kind::MoveNodes) continue;
    double moved = 0;
    for (const NodeCost& n : action.nodes) moved += n.work_units();
    EXPECT_LE(moved, (450'000.0 / 15.0 - 25'000.0) + 1.0);
  }
}

TEST(Capacity, SerializationRoundTrip) {
  RenderCapacity cap = RenderCapacity::from_profile(sim::xeon_desktop());
  util::ByteWriter w;
  write_capacity(w, cap);
  util::ByteReader r(w.data());
  const RenderCapacity back = read_capacity(r);
  EXPECT_EQ(back.host, cap.host);
  EXPECT_DOUBLE_EQ(back.polygons_per_sec, cap.polygons_per_sec);
  EXPECT_EQ(back.texture_mem_bytes, cap.texture_mem_bytes);
  EXPECT_EQ(back.hw_volume_rendering, cap.hw_volume_rendering);
}

}  // namespace
}  // namespace rave::core

// Tests for the extension features: frustum culling, session access
// control (§3.2.2), the live-feed bridge to external simulators (§5.2),
// and the molecular-dynamics toy itself.
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "core/live_feed.hpp"
#include "mesh/primitives.hpp"
#include "render/frustum.hpp"
#include "render/rasterizer.hpp"
#include "sim/molecule.hpp"

namespace rave {
namespace {

using scene::Camera;
using scene::kRootNode;
using scene::SceneTree;
using util::Vec3;

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 5};
  cam.target = {0, 0, 0};
  return cam;
}

// --- frustum -----------------------------------------------------------------

TEST(Frustum, ClassifiesPointsAndBoxes) {
  const render::Frustum frustum = render::Frustum::from_camera(front_camera(), 1.0f);
  EXPECT_TRUE(frustum.contains_point({0, 0, 0}));
  EXPECT_FALSE(frustum.contains_point({0, 0, 10}));   // behind the camera
  EXPECT_FALSE(frustum.contains_point({50, 0, 0}));   // far off to the side
  EXPECT_FALSE(frustum.contains_point({0, 0, -2000}));  // beyond the far plane

  util::Aabb visible;
  visible.extend({-0.5f, -0.5f, -0.5f});
  visible.extend({0.5f, 0.5f, 0.5f});
  EXPECT_TRUE(frustum.intersects(visible));

  util::Aabb behind;
  behind.extend({-0.5f, -0.5f, 8.0f});
  behind.extend({0.5f, 0.5f, 9.0f});
  EXPECT_FALSE(frustum.intersects(behind));

  // Straddling a plane counts as visible (conservative).
  util::Aabb straddling;
  straddling.extend({-50, -50, -1});
  straddling.extend({50, 50, 1});
  EXPECT_TRUE(frustum.intersects(straddling));
}

TEST(Frustum, CullingSkipsOffscreenNodesWithoutChangingPixels) {
  SceneTree tree;
  tree.add_child(kRootNode, "visible", mesh::make_uv_sphere(0.5f, 16, 12));
  tree.add_child(kRootNode, "behind", mesh::make_uv_sphere(0.5f, 16, 12),
                 util::Mat4::translate({0, 0, 30}));
  tree.add_child(kRootNode, "far-left", mesh::make_uv_sphere(0.5f, 16, 12),
                 util::Mat4::translate({-40, 0, 0}));

  render::RenderOptions with_cull;
  with_cull.frustum_cull = true;
  render::RenderOptions without_cull;
  without_cull.frustum_cull = false;

  render::RenderStats culled_stats, full_stats;
  const render::FrameBuffer culled =
      render::render_tree(tree, front_camera(), 64, 64, with_cull, &culled_stats);
  const render::FrameBuffer full =
      render::render_tree(tree, front_camera(), 64, 64, without_cull, &full_stats);

  EXPECT_EQ(culled_stats.nodes_culled, 2u);
  EXPECT_LT(culled_stats.triangles_submitted, full_stats.triangles_submitted);
  // Culling must never change the image.
  EXPECT_EQ(culled.color(), full.color());
  EXPECT_EQ(culled.depth(), full.depth());
}

// --- access control -----------------------------------------------------------

class AclFixture : public testing::Test {
 protected:
  AclFixture() : grid_(clock_), data_(grid_.add_data_service("datahost")) {
    SceneTree tree;
    tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.5f, 12, 8));
    (void)data_.create_session("private", std::move(tree));
  }

  util::SimClock clock_;
  core::RaveGrid grid_;
  core::DataService& data_;
};

TEST_F(AclFixture, OpenSessionAdmitsAnyone) {
  grid_.add_render_service("stranger");
  EXPECT_TRUE(grid_.join("stranger", "datahost", "private").ok());
}

TEST_F(AclFixture, RestrictedSessionRefusesUnlistedHost) {
  ASSERT_TRUE(data_.restrict_session("private", {"trusted"}).ok());
  EXPECT_FALSE(data_.host_permitted("private", "stranger"));
  EXPECT_TRUE(data_.host_permitted("private", "trusted"));

  grid_.add_render_service("stranger");
  const util::Status joined = grid_.join("stranger", "datahost", "private");
  EXPECT_FALSE(joined.ok());
  EXPECT_TRUE(data_.subscribers("private").empty());

  grid_.add_render_service("trusted");
  EXPECT_TRUE(grid_.join("trusted", "datahost", "private").ok());
}

TEST_F(AclFixture, GrantThenJoinSucceeds) {
  ASSERT_TRUE(data_.restrict_session("private", {"trusted"}).ok());
  grid_.add_render_service("newcomer");
  EXPECT_FALSE(grid_.join("newcomer", "datahost", "private").ok());
  ASSERT_TRUE(data_.grant_access("private", "newcomer").ok());
  // The render service object refuses a second connect of the same session
  // name; a fresh service on the same host would re-dial. Verify at the
  // permission level plus a new subscriber.
  grid_.add_render_service("newcomer2");
  EXPECT_TRUE(grid_.join("newcomer2", "datahost", "private").ok() ||
              data_.host_permitted("private", "newcomer"));
}

TEST_F(AclFixture, RevocationDisconnectsLiveSubscriber) {
  // Keep a second host on the list: an empty ACL means "open", so revoking
  // the only member would re-open the session.
  ASSERT_TRUE(data_.restrict_session("private", {"member", "owner"}).ok());
  grid_.add_render_service("member");
  ASSERT_TRUE(grid_.join("member", "datahost", "private").ok());
  ASSERT_EQ(data_.subscribers("private").size(), 1u);

  ASSERT_TRUE(data_.revoke_access("private", "member").ok());
  grid_.pump_until_idle();
  EXPECT_TRUE(data_.subscribers("private").empty());
  EXPECT_FALSE(data_.host_permitted("private", "member"));
}

TEST_F(AclFixture, AclOpsOnMissingSessionFail) {
  EXPECT_FALSE(data_.restrict_session("ghost", {"x"}).ok());
  EXPECT_FALSE(data_.grant_access("ghost", "x").ok());
  EXPECT_FALSE(data_.host_permitted("ghost", "x"));
}

// --- live feed ------------------------------------------------------------------

TEST(LiveFeed, PublishesObjectsAndStreamsUpdates) {
  util::SimClock clock;
  core::RaveGrid grid(clock);
  core::DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("feed", SceneTree{}).ok());
  grid.add_render_service("viz");
  ASSERT_TRUE(grid.join("viz", "datahost", "feed").ok());

  core::LiveFeed feed(clock, grid.fabric(), "external-sim");
  ASSERT_TRUE(feed.connect(grid.data_access_point("datahost"), "feed").ok());
  const auto pump = [&] { grid.pump_all(); };

  auto node = feed.add_object("probe", mesh::make_uv_sphere(0.2f, 8, 6),
                              util::Mat4::translate({1, 0, 0}), 5.0, pump);
  ASSERT_TRUE(node.ok()) << node.error();
  // Visible on the render service replica.
  EXPECT_TRUE(grid.render_service("viz")->replica("feed")->contains(node.value()));

  // Streaming transforms propagates.
  ASSERT_TRUE(feed.move_object(node.value(), util::Mat4::translate({0, 3, 0})).ok());
  grid.pump_until_idle();
  EXPECT_EQ(grid.render_service("viz")
                ->replica("feed")
                ->find(node.value())
                ->transform.transform_point({0, 0, 0}),
            (Vec3{0, 3, 0}));
}

TEST(LiveFeed, ExternalUpdatesReachTheHandlerOwnEchoesDoNot) {
  util::SimClock clock;
  core::RaveGrid grid(clock);
  core::DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("feed", SceneTree{}).ok());
  grid.add_render_service("viz");
  ASSERT_TRUE(grid.join("viz", "datahost", "feed").ok());

  core::LiveFeed feed(clock, grid.fabric());
  ASSERT_TRUE(feed.connect(grid.data_access_point("datahost"), "feed").ok());
  int external_updates = 0;
  feed.set_external_update_handler([&](const scene::SceneUpdate&) { ++external_updates; });
  const auto pump = [&] { grid.pump_all(); };

  auto node = feed.add_object("obj", mesh::make_uv_sphere(0.2f, 8, 6),
                              util::Mat4::identity(), 5.0, pump);
  ASSERT_TRUE(node.ok());
  // Own publish echoes back but must not trigger the handler.
  ASSERT_TRUE(feed.move_object(node.value(), util::Mat4::translate({1, 0, 0})).ok());
  grid.pump_until_idle();
  feed.pump();
  EXPECT_EQ(external_updates, 0);

  // A render-service user's edit does.
  ASSERT_TRUE(grid.render_service("viz")
                  ->submit_update("feed", scene::SceneUpdate::set_transform(
                                              node.value(), util::Mat4::translate({5, 0, 0})))
                  .ok());
  grid.pump_until_idle();
  feed.pump();
  EXPECT_EQ(external_updates, 1);
}

// --- molecule --------------------------------------------------------------------

TEST(Molecule, StrainedRingRelaxes) {
  sim::Molecule mol = sim::make_ring_molecule(6, 0.5f);
  const double initial = mol.potential_energy();
  ASSERT_GT(initial, 0.5);
  for (int i = 0; i < 400; ++i) mol.step(0.02f);
  EXPECT_LT(mol.potential_energy(), initial * 0.05);
  EXPECT_LT(mol.kinetic_energy(), 0.05);  // damped to rest
}

TEST(Molecule, ImpulseDisturbsThenResettles) {
  sim::Molecule mol = sim::make_ring_molecule(6, 0.0f);
  for (int i = 0; i < 100; ++i) mol.step(0.02f);
  const double rest = mol.potential_energy();
  mol.apply_impulse(0, {4, 0, 0});
  mol.step(0.02f);
  double peak = 0;
  for (int i = 0; i < 200; ++i) {
    mol.step(0.02f);
    peak = std::max(peak, mol.potential_energy());
  }
  EXPECT_GT(peak, rest + 0.1);
  for (int i = 0; i < 600; ++i) mol.step(0.02f);
  EXPECT_LT(mol.potential_energy(), peak * 0.1);
}

TEST(Molecule, BondsHoldChainTogether) {
  sim::Molecule mol = sim::make_chain_molecule(8);
  mol.apply_impulse(7, {3, 2, 0});
  for (int i = 0; i < 500; ++i) mol.step(0.02f);
  // The chain stretched but no bond snapped: neighbours stay near rest.
  for (const sim::Bond& bond : mol.bonds()) {
    const float length =
        (mol.atoms()[bond.a].position - mol.atoms()[bond.b].position).length();
    EXPECT_NEAR(length, bond.rest_length, bond.rest_length * 0.5f);
  }
}

TEST(Molecule, PinOverridesDynamics) {
  sim::Molecule mol = sim::make_chain_molecule(4);
  mol.pin_atom(0, {10, 10, 10});
  EXPECT_EQ(mol.atoms()[0].position, (Vec3{10, 10, 10}));
  EXPECT_EQ(mol.atoms()[0].velocity, (Vec3{0, 0, 0}));
}

TEST(Molecule, ElementColorsDistinct) {
  EXPECT_NE(sim::element_color("C"), sim::element_color("O"));
  EXPECT_NE(sim::element_color("H"), sim::element_color("N"));
}

// --- parallel ray casting -------------------------------------------------------

TEST(ParallelRaycast, BitIdenticalToSerial) {
  scene::VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 12;
  grid.origin = {-1, -1, -1};
  grid.spacing = {1.0f / 6, 1.0f / 6, 1.0f / 6};
  grid.values.resize(grid.voxel_count());
  for (size_t i = 0; i < grid.values.size(); ++i)
    grid.values[i] = static_cast<float>((i * 31) % 97) / 97.0f;
  grid.iso_low = 0.2f;
  grid.opacity_scale = 2.0f;
  SceneTree tree;
  tree.add_child(kRootNode, "vol", grid);

  render::FrameBuffer serial(64, 64), parallel(64, 64);
  serial.clear({0, 0, 0});
  parallel.clear({0, 0, 0});
  render::raycast_tree_volumes(serial, tree, front_camera());
  util::ThreadPool pool(4);
  render::RaycastOptions opts;
  opts.pool = &pool;
  render::raycast_tree_volumes(parallel, tree, front_camera(), opts);
  EXPECT_EQ(serial.color(), parallel.color());
  EXPECT_EQ(serial.depth(), parallel.depth());
}

// --- adaptive compression through the full client path ----------------------------

TEST(AdaptivePipeline, StaticSceneSettlesIntoSmallDeltas) {
  util::SimClock clock;
  core::RaveGrid grid(clock);
  core::DataService& data = grid.add_data_service("datahost");
  SceneTree tree;
  tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.6f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());

  core::ThinClient client(clock, grid.fabric());
  ASSERT_TRUE(client.connect(grid.render_service("laptop")->client_access_point(), "demo").ok());
  const auto pump = [&] { grid.pump_all(); };
  Camera cam = front_camera();

  auto first = client.request_frame(cam, 200, 200, 5.0, pump);
  ASSERT_TRUE(first.ok());
  const uint64_t first_bytes = client.last_stats().image_bytes;
  auto second = client.request_frame(cam, 200, 200, 5.0, pump);
  ASSERT_TRUE(second.ok());
  const uint64_t second_bytes = client.last_stats().image_bytes;
  // Identical camera, static scene: the second frame is a near-empty delta.
  EXPECT_EQ(client.last_stats().codec, compress::CodecKind::Delta);
  EXPECT_LT(second_bytes, first_bytes / 4);
  // And the decoded images are pixel-identical.
  EXPECT_EQ(first.value().rgb, second.value().rgb);
}

}  // namespace
}  // namespace rave

// Fabric wiring and SOAP control-plane tests: in-process listeners with
// per-listener link overrides, TCP fabric round trips, and the data/render
// services' SOAP endpoints exercised through real proxies.
#include <gtest/gtest.h>

#include <thread>

#include "core/fabric.hpp"
#include "core/grid.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

TEST(InProcFabricTest, ListenDialExchange) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  net::ChannelPtr server_side;
  auto access = fabric.listen("svc", [&](net::ChannelPtr ch) { server_side = std::move(ch); });
  ASSERT_TRUE(access.ok());
  EXPECT_EQ(access.value(), "inproc:svc");

  auto client = fabric.dial("inproc:svc");
  ASSERT_TRUE(client.ok());
  ASSERT_NE(server_side, nullptr);
  ASSERT_TRUE(client.value()->send({7, {1, 2}}).ok());
  auto msg = server_side->try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 7);
}

TEST(InProcFabricTest, ErrorsAndUnlisten) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  auto ok = fabric.listen("svc", [](net::ChannelPtr) {});
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(fabric.listen("svc", [](net::ChannelPtr) {}).ok());  // name in use
  EXPECT_FALSE(fabric.dial("inproc:nothing").ok());
  EXPECT_FALSE(fabric.dial("tcp:1.2.3.4:80").ok());  // wrong scheme
  fabric.unlisten("svc");
  EXPECT_FALSE(fabric.dial("inproc:svc").ok());
}

TEST(InProcFabricTest, PerListenerLinkOverrideDelaysDelivery) {
  util::SimClock clock;
  InProcFabric fabric(clock);  // default: instant
  net::ChannelPtr fast_server, slow_server;
  (void)fabric.listen("fast", [&](net::ChannelPtr ch) { fast_server = std::move(ch); });
  (void)fabric.listen("slow", [&](net::ChannelPtr ch) { slow_server = std::move(ch); });
  net::LinkProfile crawl;
  crawl.bandwidth_bps = 8e3;  // 1 KB/s
  fabric.set_link("slow", crawl);

  auto fast = fabric.dial("inproc:fast");
  auto slow = fabric.dial("inproc:slow");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  (void)fast.value()->send({1, std::vector<uint8_t>(1000)});
  (void)slow.value()->send({1, std::vector<uint8_t>(1000)});
  EXPECT_TRUE(fast_server->try_receive().has_value());   // instant
  EXPECT_FALSE(slow_server->try_receive().has_value());  // ~1 s away
  clock.advance(2.0);
  EXPECT_TRUE(slow_server->try_receive().has_value());
}

TEST(TcpFabricTest, ListenDialRoundTrip) {
  TcpFabric fabric;
  std::atomic<int> accepted{0};
  net::ChannelPtr server_side;
  std::mutex mu;
  auto access = fabric.listen("svc", [&](net::ChannelPtr ch) {
    std::lock_guard lock(mu);
    server_side = std::move(ch);
    accepted.fetch_add(1);
  });
  ASSERT_TRUE(access.ok()) << access.error();
  ASSERT_EQ(access.value().rfind("tcp:127.0.0.1:", 0), 0u);

  auto client = fabric.dial(access.value());
  ASSERT_TRUE(client.ok()) << client.error();
  for (int i = 0; i < 200 && accepted.load() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(accepted.load(), 1);
  ASSERT_TRUE(client.value()->send({0x0101, {42}}).ok());
  net::ChannelPtr server;
  {
    std::lock_guard lock(mu);
    server = server_side;
  }
  auto msg = server->receive(2.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload[0], 42);
  EXPECT_FALSE(fabric.dial("tcp:127.0.0.1:notaport").ok());
  EXPECT_FALSE(fabric.dial("inproc:svc").ok());
}

class SoapEndpointFixture : public testing::Test {
 protected:
  SoapEndpointFixture() : grid_(clock_) {
    DataService& data = grid_.add_data_service("datahost");
    scene::SceneTree tree;
    tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
    (void)data.create_session("demo", std::move(tree));
    grid_.add_render_service("laptop");
    (void)grid_.join("laptop", "datahost", "demo");
  }

  util::Result<services::SoapValue> call(const std::string& host, const std::string& endpoint,
                                         const std::string& method,
                                         services::SoapList args = {}) {
    auto proxy = grid_.soap_proxy(host, endpoint);
    if (!proxy.ok()) return util::make_error(proxy.error());
    grid_.container(host)->start();
    auto result = proxy.value().call(method, std::move(args), 2.0);
    grid_.container(host)->stop();
    return result;
  }

  util::SimClock clock_;
  RaveGrid grid_;
};

TEST_F(SoapEndpointFixture, DescribeSessionReportsState) {
  auto described = call("datahost", "data", "describeSession", {services::SoapValue{"demo"}});
  ASSERT_TRUE(described.ok()) << described.error();
  EXPECT_EQ(described.value().field("name").as_string(), "demo");
  EXPECT_EQ(described.value().field("nodes").as_int(), 2);
  EXPECT_GT(described.value().field("triangles").as_int(), 100);
  EXPECT_EQ(described.value().field("subscribers").as_int(), 1);
  EXPECT_FALSE(
      call("datahost", "data", "describeSession", {services::SoapValue{"nope"}}).ok());
}

TEST_F(SoapEndpointFixture, CreateSessionViaSoap) {
  auto created = call("datahost", "data", "createSession",
                      {services::SoapValue{"fresh"}, services::SoapValue{"empty:"}});
  ASSERT_TRUE(created.ok()) << created.error();
  EXPECT_NE(grid_.data_service("datahost")->session_tree("fresh"), nullptr);
  // Duplicate refused with an explanation.
  auto dup = call("datahost", "data", "createSession",
                  {services::SoapValue{"fresh"}, services::SoapValue{"empty:"}});
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.error().find("exists"), std::string::npos);
}

TEST_F(SoapEndpointFixture, QuerySessionLoadListsSubscribers) {
  auto load = call("datahost", "data", "querySessionLoad", {services::SoapValue{"demo"}});
  ASSERT_TRUE(load.ok()) << load.error();
  ASSERT_NE(load.value().as_list(), nullptr);
  ASSERT_EQ(load.value().as_list()->size(), 1u);
  const auto& entry = load.value().as_list()->front();
  EXPECT_EQ(entry.field("host").as_string(), "laptop");
  EXPECT_TRUE(entry.field("wholeTree").as_bool());
}

TEST_F(SoapEndpointFixture, RenderCapacityInterrogation) {
  // The §3.2.5 capacity interrogation, over the real control plane.
  auto capacity = call("laptop", "render", "queryCapacity");
  ASSERT_TRUE(capacity.ok()) << capacity.error();
  EXPECT_EQ(capacity.value().field("host").as_string(), "laptop");
  EXPECT_GT(capacity.value().field("polygonsPerSec").as_double(), 1e6);
  EXPECT_GT(capacity.value().field("textureMemBytes").as_int(), 0);
}

TEST_F(SoapEndpointFixture, ConnectThinClientValidatesSession) {
  auto endpoint = call("laptop", "render", "connectThinClient", {services::SoapValue{"demo"}});
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint.value().as_string(),
            grid_.render_service("laptop")->client_access_point());
  EXPECT_FALSE(
      call("laptop", "render", "connectThinClient", {services::SoapValue{"ghost"}}).ok());
}

}  // namespace
}  // namespace rave::core

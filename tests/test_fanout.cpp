// Fan-out tier tests: content-addressed tile caching, per-class encode
// memoization, relay trees, and the property that cached-tile delivery is
// byte-identical to full-frame delivery across codecs, quality classes and
// cache-eviction schedules — including the fault lane where a relay dies
// mid-frame and subscribers recover with no stale tiles.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "compress/tile_cache.hpp"
#include "core/frame_stream.hpp"
#include "core/grid.hpp"
#include "mesh/primitives.hpp"
#include "net/fanout.hpp"
#include "net/reactor.hpp"
#include "net/simlink.hpp"
#include "net/tcp.hpp"
#include "obs/trace.hpp"
#include "render/compositor.hpp"
#include "util/clock.hpp"

namespace rave::core {
namespace {

using compress::CodecKind;
using compress::QualityClass;
using render::Image;
using render::Tile;

Image test_image(int w, int h, int seed) {
  Image img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.set_pixel(x, y, static_cast<uint8_t>((x * 7 + seed * 13) & 0xFF),
                    static_cast<uint8_t>((y * 11 + seed) & 0xFF),
                    static_cast<uint8_t>((x + y * 3 + seed * 5) & 0xFF));
  return img;
}

// What a subscriber of `quality` would present under full-frame delivery:
// every tile encoded and decoded through the class codec, no caching
// anywhere. The byte-identity property compares assembled frames to this.
Image full_delivery_reference(const Image& frame, QualityClass quality, int tile_size) {
  const auto codec = compress::make_codec(compress::codec_for_quality(quality));
  Image out(frame.width, frame.height);
  for (const Tile& tile : render::tile_grid(frame.width, frame.height, tile_size)) {
    const Image pixels = frame.extract(tile);
    auto decoded = codec->decode(codec->encode(pixels, nullptr), nullptr);
    EXPECT_TRUE(decoded.ok());
    out.insert(tile, decoded.value());
  }
  return out;
}

// --- FanoutHub (satellite: lock scope + byte accounting) ---------------------

TEST(FanoutHub, CountsBytesPerDeliveryAndSkipsFiltered) {
  net::FanoutHub hub;
  auto [a_pub, a_sub] = net::make_channel_pair();
  auto [b_pub, b_sub] = net::make_channel_pair();
  hub.subscribe(a_pub);
  hub.subscribe(b_pub, [](const net::Message& m) { return m.type != 0x42; });

  net::Message wanted{0x41, {1, 2, 3}};
  net::Message filtered{0x42, {4, 5, 6, 7}};
  EXPECT_EQ(hub.publish(wanted), 2u);
  EXPECT_EQ(hub.publish(filtered), 1u);  // b's filter skipped it
  // Unicast counts actual deliveries only; multicast counts the payload
  // once per publish that reached anyone.
  EXPECT_EQ(hub.unicast_bytes(), 2 * wanted.wire_size() + filtered.wire_size());
  EXPECT_EQ(hub.multicast_bytes(), wanted.wire_size() + filtered.wire_size());
  EXPECT_TRUE(a_sub->try_receive().has_value());
  EXPECT_TRUE(b_sub->try_receive().has_value());
  EXPECT_TRUE(a_sub->try_receive().has_value());
  EXPECT_FALSE(b_sub->try_receive().has_value());
}

TEST(FanoutHub, PublishRunsOutsideTheLock) {
  // A filter that re-enters the hub would deadlock if publish held the
  // mutex across delivery; with snapshot-then-send it must not.
  net::FanoutHub hub;
  auto [pub, sub] = net::make_channel_pair();
  hub.subscribe(pub, [&hub](const net::Message&) {
    (void)hub.subscriber_count();  // re-entrant lock acquisition
    return true;
  });
  EXPECT_EQ(hub.publish(net::Message{1, {9}}), 1u);
  EXPECT_TRUE(sub->try_receive().has_value());
}

TEST(FanoutHub, ConcurrentPublishAndChurn) {
  // tsan lane: publishers race subscriber churn; counters stay coherent.
  net::FanoutHub hub;
  auto [keep_pub, keep_sub] = net::make_channel_pair();
  hub.subscribe(keep_pub);
  std::thread churn([&] {
    for (int i = 0; i < 200; ++i) {
      auto [p, s] = net::make_channel_pair();
      const auto id = hub.subscribe(p);
      hub.unsubscribe(id);
    }
  });
  std::thread pub_thread([&] {
    for (int i = 0; i < 200; ++i) (void)hub.publish(net::Message{7, {1, 2}});
  });
  churn.join();
  pub_thread.join();
  size_t received = 0;
  while (keep_sub->try_receive().has_value()) ++received;
  EXPECT_EQ(received, 200u);
  EXPECT_GE(hub.unicast_bytes(), hub.multicast_bytes());
}

// --- EncodeMemo / TileStore --------------------------------------------------

TEST(EncodeMemo, SharesEncodesAndTracksSavings) {
  compress::EncodeMemo memo(8);
  const Image tile = test_image(32, 32, 1);
  const uint64_t hash = render::hash_image(tile);
  const auto first = memo.encode(hash, QualityClass::Pda, tile);
  const auto again = memo.encode(hash, QualityClass::Pda, tile);
  EXPECT_EQ(first.get(), again.get());  // shared, not re-encoded
  EXPECT_EQ(memo.stats().misses, 1u);
  EXPECT_EQ(memo.stats().hits, 1u);
  EXPECT_EQ(memo.stats().bytes_saved, first->byte_size());
  // A different class encodes separately even for the same content.
  const auto lossless = memo.encode(hash, QualityClass::Workstation, tile);
  EXPECT_NE(lossless->codec, first->codec);
  EXPECT_EQ(memo.stats().misses, 2u);
  EXPECT_NE(memo.lookup(hash, QualityClass::Workstation), nullptr);
  EXPECT_EQ(memo.lookup(hash + 1, QualityClass::Workstation), nullptr);
}

TEST(EncodeMemo, EvictsLeastRecentlyUsed) {
  compress::EncodeMemo memo(2);
  const Image a = test_image(8, 8, 1), b = test_image(8, 8, 2), c = test_image(8, 8, 3);
  (void)memo.encode(1, QualityClass::Pda, a);
  (void)memo.encode(2, QualityClass::Pda, b);
  (void)memo.encode(1, QualityClass::Pda, a);  // refresh 1
  (void)memo.encode(3, QualityClass::Pda, c);  // evicts 2
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_NE(memo.lookup(1, QualityClass::Pda), nullptr);
  EXPECT_EQ(memo.lookup(2, QualityClass::Pda), nullptr);
  EXPECT_EQ(memo.size(), 2u);
}

TEST(TileStore, LruEvictionOnlyCostsMisses) {
  compress::TileStore store(2);
  store.insert(1, test_image(4, 4, 1));
  store.insert(2, test_image(4, 4, 2));
  ASSERT_NE(store.lookup(1), nullptr);  // refresh 1 → 2 is now LRU
  store.insert(3, test_image(4, 4, 3));
  EXPECT_EQ(store.lookup(2), nullptr);
  EXPECT_NE(store.lookup(3), nullptr);
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().inserts, 3u);
}

// --- protocol round trips ----------------------------------------------------

TEST(StreamProtocol, MessagesRoundTrip) {
  StreamSubscribeMsg sub{"demo", QualityClass::Pda};
  auto sub2 = decode_stream_subscribe(encode(sub));
  ASSERT_TRUE(sub2.ok());
  EXPECT_EQ(sub2.value().session, "demo");
  EXPECT_EQ(sub2.value().quality, QualityClass::Pda);

  FrameBeginMsg begin{41, 640, 480, 64, 80, QualityClass::Workstation};
  auto begin2 = decode_frame_begin(encode(begin));
  ASSERT_TRUE(begin2.ok());
  EXPECT_EQ(begin2.value().frame_id, 41u);
  EXPECT_EQ(begin2.value().tile_count, 80u);

  TileRefMsg ref{41, 17, 0x1234567890abcdefull};
  const net::Message ref_wire = encode(ref);
  // The whole point: an unchanged tile costs ~16 bytes on the wire.
  EXPECT_LE(ref_wire.payload.size(), 16u);
  auto ref2 = decode_tile_ref(ref_wire);
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(ref2.value().hash, ref.hash);
  EXPECT_EQ(ref2.value().tile_index, 17);

  TileDataMsg data;
  data.frame_id = 41;
  data.tile_index = 3;
  data.tile = Tile{64, 128, 64, 64};
  data.hash = 99;
  data.encoded = {1, 2, 3, 4, 5};
  auto data2 = decode_tile_data(encode(data));
  ASSERT_TRUE(data2.ok());
  EXPECT_EQ(data2.value().tile, data.tile);
  EXPECT_EQ(data2.value().encoded, data.encoded);

  FrameEndMsg end{41, 80, 0xfeedfacecafebeefull};
  auto end2 = decode_frame_end(encode(end));
  ASSERT_TRUE(end2.ok());
  EXPECT_EQ(end2.value().frame_hash, end.frame_hash);

  TileMissMsg miss{0xabcull, 41, 7, QualityClass::Pda};
  auto miss2 = decode_tile_miss(encode(miss));
  ASSERT_TRUE(miss2.ok());
  EXPECT_EQ(miss2.value().hash, 0xabcull);
  EXPECT_EQ(miss2.value().quality, QualityClass::Pda);
}

// --- publisher ↔ receiver ----------------------------------------------------

struct StreamPair {
  FrameStreamPublisher publisher;
  std::unique_ptr<FrameStreamReceiver> receiver;
  std::function<void()> pump;

  StreamPair(util::SimClock& clock, QualityClass quality, FrameStreamOptions options)
      : publisher(options) {
    auto [server_end, client_end] = net::make_channel_pair();
    publisher.subscribe(server_end, quality);
    receiver = std::make_unique<FrameStreamReceiver>(client_end, quality, options);
    pump = [this] { (void)publisher.pump(); };
  }
};

TEST(FrameStream, StaticSceneShipsRefsAfterKeyframe) {
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  StreamPair pair(clock, QualityClass::Workstation, options);
  const Image frame = test_image(128, 96, 1);

  const auto first = pair.publisher.publish_frame(frame);
  EXPECT_EQ(first.tiles_data, first.tiles_total);  // keyframe
  auto got1 = pair.receiver->next_frame(clock, 1.0, pair.pump);
  ASSERT_TRUE(got1.ok()) << got1.error();
  EXPECT_EQ(got1.value().rgb, frame.rgb);  // lossless class: exact

  const auto second = pair.publisher.publish_frame(frame);
  EXPECT_EQ(second.tiles_ref, second.tiles_total);  // nothing changed
  EXPECT_LT(second.ref_bytes, first.data_bytes / 20);
  auto got2 = pair.receiver->next_frame(clock, 1.0, pair.pump);
  ASSERT_TRUE(got2.ok()) << got2.error();
  EXPECT_EQ(got2.value().rgb, frame.rgb);
  EXPECT_GT(pair.receiver->stats().refs_resolved, 0u);
  EXPECT_EQ(pair.receiver->stats().miss_requests, 0u);
}

TEST(FrameStream, PartialChangeShipsOnlyChangedTiles) {
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  StreamPair pair(clock, QualityClass::Workstation, options);
  Image frame = test_image(128, 128, 2);
  (void)pair.publisher.publish_frame(frame);
  ASSERT_TRUE(pair.receiver->next_frame(clock, 1.0, pair.pump).ok());

  frame.set_pixel(5, 5, 255, 0, 0);  // touches exactly one 32px tile
  const auto report = pair.publisher.publish_frame(frame);
  EXPECT_EQ(report.tiles_data, 1u);
  EXPECT_EQ(report.tiles_ref, report.tiles_total - 1);
  auto got = pair.receiver->next_frame(clock, 1.0, pair.pump);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value().rgb, frame.rgb);
}

TEST(FrameStream, LateJoinerForcesKeyframeForItsClass) {
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  FrameStreamPublisher publisher(options);
  auto [a_srv, a_cli] = net::make_channel_pair();
  publisher.subscribe(a_srv, QualityClass::Workstation);
  FrameStreamReceiver a(a_cli, QualityClass::Workstation, options);
  const Image frame = test_image(96, 64, 3);
  const auto pump = [&] { (void)publisher.pump(); };
  (void)publisher.publish_frame(frame);
  ASSERT_TRUE(a.next_frame(clock, 1.0, pump).ok());

  // B joins between frames; the next frame must be all data for the class
  // (B has no store), and the memo absorbs the duplicate encode work.
  auto [b_srv, b_cli] = net::make_channel_pair();
  publisher.subscribe(b_srv, QualityClass::Workstation);
  FrameStreamReceiver b(b_cli, QualityClass::Workstation, options);
  const auto report = publisher.publish_frame(frame);
  EXPECT_EQ(report.tiles_data, report.tiles_total);
  EXPECT_GT(publisher.memo().stats().hits, 0u);  // re-ship reused encodes
  auto got_a = a.next_frame(clock, 1.0, pump);
  auto got_b = b.next_frame(clock, 1.0, pump);
  ASSERT_TRUE(got_a.ok());
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_a.value().rgb, frame.rgb);
  EXPECT_EQ(got_b.value().rgb, frame.rgb);
}

// Property: cached-tile delivery is byte-identical to full-frame delivery
// for every quality class × eviction schedule, even when the subscriber's
TEST(FrameStream, OverSimulatedWirelessLinkRefsCutDeliveryTime) {
  // End-to-end over net/simlink: a PDA subscriber on the paper's shared
  // 11 Mbit wireless link. The second (unchanged) frame ships as tile refs,
  // so its virtual delivery time must collapse relative to the keyframe.
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  FrameStreamPublisher publisher(options);
  auto [server_end, client_end] = net::make_simulated_pair(clock, net::wireless_11mbit());
  publisher.subscribe(server_end, QualityClass::Pda);
  FrameStreamReceiver receiver(client_end, QualityClass::Pda, options);
  const auto pump = [&] { (void)publisher.pump(); };

  const Image frame = test_image(160, 120, 6);
  (void)publisher.publish_frame(frame);
  const double t0 = clock.now();
  auto first = receiver.next_frame(clock, 30.0, pump);
  ASSERT_TRUE(first.ok()) << first.error();
  const double keyframe_seconds = clock.now() - t0;

  (void)publisher.publish_frame(frame);
  const double t1 = clock.now();
  auto second = receiver.next_frame(clock, 30.0, pump);
  ASSERT_TRUE(second.ok()) << second.error();
  const double ref_seconds = clock.now() - t1;

  EXPECT_EQ(second.value().rgb, first.value().rgb);
  EXPECT_EQ(second.value().rgb,
            full_delivery_reference(frame, QualityClass::Pda, options.tile_size).rgb);
  EXPECT_GT(receiver.stats().refs_resolved, 0u);
  EXPECT_GT(keyframe_seconds, 0.0);
  EXPECT_LT(ref_seconds, keyframe_seconds / 2);
}

// tile store is too small to hold a frame (forcing miss fallbacks).
class DeliveryIdentity
    : public testing::TestWithParam<std::tuple<QualityClass, size_t>> {};

TEST_P(DeliveryIdentity, CachedEqualsFullDelivery) {
  const auto [quality, store_capacity] = GetParam();
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 24;                       // ragged edges included
  options.tile_store_capacity = store_capacity;  // 1 = pathological thrash
  StreamPair pair(clock, quality, options);

  Image frame = test_image(100, 80, 4);
  for (int step = 0; step < 6; ++step) {
    // Orbit-like churn: shift a band of pixels each step so some tiles
    // change and some repeat content seen frames ago.
    for (int y = step * 10; y < step * 10 + 10 && y < frame.height; ++y)
      for (int x = 0; x < frame.width; ++x)
        frame.set_pixel(x, y, static_cast<uint8_t>(step * 40), 0,
                        static_cast<uint8_t>(x & 0xFF));
    (void)pair.publisher.publish_frame(frame);
    auto got = pair.receiver->next_frame(clock, 1.0, pair.pump);
    ASSERT_TRUE(got.ok()) << "step " << step << ": " << got.error();
    const Image reference = full_delivery_reference(frame, quality, options.tile_size);
    ASSERT_EQ(got.value().rgb, reference.rgb) << "step " << step;
  }
  if (store_capacity == 1) {
    // The thrashing store must have exercised the fallback path.
    EXPECT_GT(pair.receiver->stats().miss_requests, 0u);
    EXPECT_GT(pair.publisher.stats().miss_replies, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DeliveryIdentity,
    testing::Combine(testing::Values(QualityClass::Workstation, QualityClass::Pda),
                     testing::Values(size_t{1}, size_t{4}, size_t{1024})),
    [](const auto& info) {
      return std::string(compress::quality_name(std::get<0>(info.param))) + "_store" +
             std::to_string(std::get<1>(info.param));
    });

// --- relays ------------------------------------------------------------------

TEST(FanoutRelay, ForwardsStreamAndServesMissesFromCache) {
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  options.tile_store_capacity = 1;  // force subscriber misses
  FrameStreamPublisher publisher(options);

  // publisher → relay → subscriber
  auto [relay_srv, relay_cli] = net::make_channel_pair();
  publisher.subscribe(relay_srv, QualityClass::Workstation);
  net::FanoutRelay relay(relay_cli);
  RelayTileCache cache(64);
  cache.attach(relay);
  auto [sub_srv, sub_cli] = net::make_channel_pair();
  relay.hub().subscribe(sub_srv);
  FrameStreamReceiver receiver(sub_cli, QualityClass::Workstation, options);
  const auto pump = [&] {
    (void)publisher.pump();
    (void)relay.pump();
  };

  Image frame = test_image(128, 64, 5);
  for (int step = 0; step < 4; ++step) {
    frame.set_pixel(step, 0, 255, 255, 255);
    (void)publisher.publish_frame(frame);
    auto got = receiver.next_frame(clock, 1.0, pump);
    ASSERT_TRUE(got.ok()) << got.error();
    EXPECT_EQ(got.value().rgb, frame.rgb);
  }
  EXPECT_GT(relay.stats().forwarded_down, 0u);
  EXPECT_GT(receiver.stats().miss_requests, 0u);
  // The relay's cache absorbed the misses — the publisher never saw them.
  EXPECT_GT(cache.stats().served, 0u);
  EXPECT_EQ(publisher.stats().miss_replies, 0u);
}

TEST(FanoutRelay, RelayDeathMidFrameRecoversWithNoStaleTiles) {
  util::SimClock clock;
  FrameStreamOptions options;
  options.tile_size = 32;
  FrameStreamPublisher publisher(options);

  auto [relay_srv, relay_cli] = net::make_channel_pair();
  const auto relay_sub_id = publisher.subscribe(relay_srv, QualityClass::Workstation);
  net::FanoutRelay relay(relay_cli);
  auto [sub_srv, sub_cli] = net::make_channel_pair();
  relay.hub().subscribe(sub_srv);
  auto receiver = std::make_unique<FrameStreamReceiver>(sub_cli, QualityClass::Workstation,
                                                        options);
  const auto pump = [&] {
    (void)publisher.pump();
    if (relay.upstream_open()) (void)relay.pump();
  };

  const Image frame1 = test_image(96, 96, 6);
  (void)publisher.publish_frame(frame1);
  ASSERT_TRUE(receiver->next_frame(clock, 1.0, pump).ok());

  // Publish the next frame but kill the relay after it forwarded only
  // part of it: pump the publisher side, move two messages, then die.
  Image frame2 = frame1;
  for (int x = 0; x < 96; ++x) frame2.set_pixel(x, 40, 0, 255, 0);
  (void)publisher.publish_frame(frame2);
  (void)relay.pump();        // everything reaches the relay's hub...
  relay.close();             // ...but the relay dies now
  sub_cli->close();          // and its downstream link drops with it
  publisher.unsubscribe(QualityClass::Workstation, relay_sub_id);

  // The subscriber reconnects straight to the publisher (re-dispatch).
  // The forced keyframe means no tile of the torn frame is trusted — the
  // recovered frame is byte-identical to the source, no stale tiles.
  auto [direct_srv, direct_cli] = net::make_channel_pair();
  publisher.subscribe(direct_srv, QualityClass::Workstation);
  receiver = std::make_unique<FrameStreamReceiver>(direct_cli, QualityClass::Workstation,
                                                   options);
  const auto report = publisher.publish_frame(frame2);
  EXPECT_EQ(report.tiles_data, report.tiles_total);  // keyframe re-dispatch
  auto got = receiver->next_frame(clock, 1.0, [&] { (void)publisher.pump(); });
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value().rgb, frame2.rgb);
}

// --- end to end through the render service -----------------------------------

TEST(FanoutE2E, StreamedFramesMatchPullsAndShowInStatus) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  scene::SceneTree tree;
  tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
  RenderService& render = *grid.render_service("laptop");

  ThinClient client(clock, grid.fabric());
  ASSERT_TRUE(client.connect(render.client_access_point(), "demo").ok());
  ASSERT_TRUE(client.subscribe_stream(QualityClass::Workstation).ok());
  grid.pump_until_idle();

  scene::Camera cam;
  cam.eye = {0, 0, 3};
  const auto pump = [&] { grid.pump_all(); };
  for (int i = 0; i < 3; ++i) {
    auto report = render.publish_stream_frame("demo", cam, 64, 64);
    ASSERT_TRUE(report.ok()) << report.error();
    auto streamed = client.next_stream_frame(1.0, pump);
    ASSERT_TRUE(streamed.ok()) << streamed.error();
    // Lossless class: the streamed frame equals the frame a pull client
    // would have rendered for the same camera.
    auto direct = render.render_distributed("demo", cam, 64, 64);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(streamed.value().rgb, direct.value().to_image().rgb);
  }
  // Static camera → later frames were all refs.
  const FrameStreamPublisher* publisher = render.stream_publisher("demo");
  ASSERT_NE(publisher, nullptr);
  EXPECT_GT(publisher->stats().tiles_ref, 0u);

  // The cache shows up in the operator dashboards.
  const RenderService::StreamTotals totals = render.stream_totals();
  EXPECT_GT(totals.tiles_ref, 0u);
  EXPECT_EQ(totals.subscribers, 1u);
  const std::string dashboard = grid.status_dashboard();
  EXPECT_NE(dashboard.find("fanout cache"), std::string::npos) << dashboard;
}

TEST(FanoutE2E, PublishSkipsRenderWithNoSubscribers) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  scene::SceneTree tree;
  tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 8, 6));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
  RenderService& render = *grid.render_service("laptop");
  scene::Camera cam;
  auto report = render.publish_stream_frame("demo", cam, 64, 64);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().tiles_total, 0u);
  EXPECT_EQ(render.stats().frames_rendered, 0u);  // no render happened
  EXPECT_FALSE(render.publish_stream_frame("nope", cam, 64, 64).ok());
}

// --- per-hop delivery tracing over real TCP ----------------------------------

std::string format_hops(const std::set<std::string>& hops) {
  std::string out;
  for (const auto& hop : hops) out += hop + "\n";
  return out;
}

// One accepted TCP connection through the process reactor: {server end
// (accepted, event-loop driven), client end (dialed)}. The listener is
// torn down once the connection lands.
std::pair<net::ChannelPtr, net::ChannelPtr> tcp_pair() {
  std::mutex mu;
  std::condition_variable cv;
  net::ChannelPtr server;
  auto listener = net::Reactor::global().listen(0, [&](net::ChannelPtr accepted) {
    std::lock_guard<std::mutex> lock(mu);
    server = std::move(accepted);
    cv.notify_all();
  });
  EXPECT_TRUE(listener.ok()) << listener.error();
  auto dialed = net::tcp_connect("127.0.0.1", listener.value()->port());
  EXPECT_TRUE(dialed.ok()) << dialed.error();
  {
    std::unique_lock<std::mutex> lock(mu);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return server != nullptr; }));
  }
  return {server, std::move(dialed).take()};
}

// The satellite regression: relays used to re-publish upstream messages
// with fresh (zero) trace fields, so a frame's trace died at the first
// relay hop. Push one frame through publisher → relay → relay →
// subscriber over real TCP sockets and require every hop — both relays,
// the reactor write queues, and the subscriber's decode and assemble — to
// land on the single trace the publisher rooted.
TEST(FanoutRelay, TraceContextSurvivesTwoRelayHopsOverTcp) {
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(true);

  FrameStreamOptions options;
  options.tile_size = 32;
  FrameStreamPublisher publisher(options);

  auto [pub_down, relay1_up] = tcp_pair();
  publisher.subscribe(pub_down, QualityClass::Workstation);
  net::FanoutRelay relay1(relay1_up);
  relay1.set_host("edge-1");
  auto [relay1_down, relay2_up] = tcp_pair();
  relay1.hub().subscribe(relay1_down);
  net::FanoutRelay relay2(relay2_up);
  relay2.set_host("edge-2");
  auto [relay2_down, sub_end] = tcp_pair();
  relay2.hub().subscribe(relay2_down);
  FrameStreamReceiver receiver(sub_end, QualityClass::Workstation, options);

  util::RealClock clock;
  const auto pump = [&] {
    (void)publisher.pump();
    (void)relay1.pump();
    (void)relay2.pump();
  };
  const Image frame = test_image(96, 64, 7);
  const auto report = publisher.publish_frame(frame);
  EXPECT_NE(report.trace_id, 0u);
  auto got = receiver.next_frame(clock, 10.0, pump);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value().rgb, frame.rgb);
  obs::Tracer::global().set_enabled(false);

  const auto spans = obs::Tracer::global().spans();
  const auto ids = obs::trace_ids(spans);
  ASSERT_EQ(ids.size(), 1u);  // one frame, one timeline
  EXPECT_EQ(ids[0], report.trace_id);

  std::set<std::string> hops;
  uint64_t root_span = 0;
  std::set<uint64_t> relay1_spans, relay2_spans;
  for (const auto& s : spans) {
    hops.insert(s.name + "@" + s.host);
    if (s.name == "publish_frame") root_span = s.span_id;
    if (s.name == "relay" && s.host == "edge-1") relay1_spans.insert(s.span_id);
    if (s.name == "relay" && s.host == "edge-2") relay2_spans.insert(s.span_id);
  }
  EXPECT_TRUE(hops.count("relay@edge-1")) << format_hops(hops);
  EXPECT_TRUE(hops.count("relay@edge-2")) << format_hops(hops);
  EXPECT_TRUE(hops.count("queue_wait@reactor")) << format_hops(hops);
  EXPECT_TRUE(hops.count("decode@subscriber")) << format_hops(hops);
  EXPECT_TRUE(hops.count("assemble@subscriber")) << format_hops(hops);

  // Parentage follows the topology: first-hop relay spans hang off the
  // publisher's root, second-hop relay spans off some first-hop span.
  ASSERT_NE(root_span, 0u);
  ASSERT_FALSE(relay1_spans.empty());
  ASSERT_FALSE(relay2_spans.empty());
  for (const auto& s : spans) {
    if (s.name == "relay" && s.host == "edge-1") EXPECT_EQ(s.parent_span_id, root_span);
    if (s.name == "relay" && s.host == "edge-2")
      EXPECT_TRUE(relay1_spans.count(s.parent_span_id)) << s.parent_span_id;
    if (s.name == "decode" || s.name == "assemble")
      EXPECT_TRUE(relay2_spans.count(s.parent_span_id)) << s.name;
  }

  // And the stitched timeline answers "where did the latency go".
  const auto path = obs::critical_path(spans, report.trace_id);
  EXPECT_FALSE(path.dominant.empty());
  EXPECT_GT(path.total_seconds, 0.0);
}

}  // namespace
}  // namespace rave::core

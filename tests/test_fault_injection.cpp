// Fault-tolerance tests (paper §3.2.7: the environment must recover
// rendering capacity automatically when conditions on a remote service
// change). Everything runs under virtual time — no wall-clock sleeps —
// so retry schedules and lease expiries are asserted exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/data_service.hpp"
#include "core/fabric.hpp"
#include "core/failure_detector.hpp"
#include "core/migration.hpp"
#include "core/render_service.hpp"
#include "mesh/primitives.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/fault.hpp"

namespace rave::core {
namespace {

using scene::Camera;
using scene::kRootNode;
using scene::SceneTree;

scene::MeshData colored_sphere(const util::Vec3& color, int detail = 16) {
  scene::MeshData mesh = mesh::make_uv_sphere(0.6f, detail, detail * 3 / 4);
  mesh.base_color = color;
  return mesh;
}

// --- RetryPolicy / dial_retry ----------------------------------------------

TEST(RetryPolicy, ScheduleIsPureFunctionOfAttemptIndex) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 0.05;
  policy.multiplier = 2.0;
  policy.max_backoff = 0.15;
  const auto schedule = policy.schedule();
  ASSERT_EQ(schedule.size(), 3u);  // retries, not attempts
  EXPECT_DOUBLE_EQ(schedule[0], 0.05);
  EXPECT_DOUBLE_EQ(schedule[1], 0.1);
  EXPECT_DOUBLE_EQ(schedule[2], 0.15);  // clamped by max_backoff
  EXPECT_DOUBLE_EQ(policy.total_backoff(), schedule[0] + schedule[1] + schedule[2]);
  EXPECT_TRUE(RetryPolicy{.max_attempts = 1}.schedule().empty());
}

TEST(RetryPolicy, DialRetryFollowsScheduleUnderVirtualTime) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 0.05;
  policy.multiplier = 2.0;
  policy.max_backoff = 0.15;

  const double start = clock.now();
  auto channel = fabric.dial_retry("inproc:nobody/home", policy, clock);
  ASSERT_FALSE(channel.ok());
  // The virtual clock advanced by exactly the backoff schedule: the
  // policy is deterministic (no jitter) so tests can assert it exactly.
  EXPECT_DOUBLE_EQ(clock.now() - start, policy.total_backoff());
  EXPECT_NE(channel.error().find("failed after 4 attempts"), std::string::npos);
  EXPECT_NE(channel.error().find("no listener"), std::string::npos);
}

TEST(RetryPolicy, DialRetrySucceedsAfterListenerAppears) {
  // The listener comes up between attempts — modelled by an accept hook
  // that counts down dial failures (single-threaded, deterministic).
  util::SimClock clock;
  InProcFabric fabric(clock);
  std::vector<net::ChannelPtr> accepted;  // keep server ends alive
  auto listen =
      fabric.listen("svc", [&](net::ChannelPtr ch) { accepted.push_back(std::move(ch)); });
  ASSERT_TRUE(listen.ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  auto channel = fabric.dial_retry(listen.value(), policy, clock);
  ASSERT_TRUE(channel.ok());
  EXPECT_TRUE(channel.value()->is_open());
}

// --- FailureDetector ---------------------------------------------------------

TEST(FailureDetector, ExpiryReportedExactlyOnce) {
  FailureDetector detector(/*lease_seconds=*/2.0);
  detector.watch("render-a", 0.0);
  detector.watch("render-b", 0.0);
  EXPECT_EQ(detector.watched_count(), 2u);
  ASSERT_TRUE(detector.heartbeat("render-a", 1.5).ok());

  const auto expired = detector.expired(2.5);  // b silent for 2.5 > 2
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], "render-b");
  EXPECT_TRUE(detector.expired(2.5).empty());  // reported exactly once
  EXPECT_FALSE(detector.watching("render-b"));
  EXPECT_TRUE(detector.watching("render-a"));

  // A heartbeat from the pruned peer is an explanatory error, not a
  // silent resurrection.
  const auto late = detector.heartbeat("render-b", 3.0);
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.error().find("render-b"), std::string::npos);

  detector.forget("render-a");  // graceful departure: no expiry reported
  EXPECT_TRUE(detector.expired(100.0).empty());
}

// --- fault-injected channels --------------------------------------------------

TEST(FaultChannel, KillSwitchClosesBothDirections) {
  auto [client, server] = net::make_channel_pair();
  auto ks = std::make_shared<sim::KillSwitch>();
  net::ChannelPtr faulty = sim::wrap_faulty(client, ks);
  ASSERT_TRUE(faulty->send(net::Message{1, {1, 2, 3}}).ok());
  ASSERT_TRUE(server->try_receive().has_value());

  ks->kill();
  EXPECT_FALSE(faulty->is_open());
  EXPECT_FALSE(server->is_open());  // the peer observes the crash too
  const auto refused = faulty->send(net::Message{1, {}});
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.error().find("dead"), std::string::npos);
}

TEST(FaultChannel, PlanDropsAndByteBudget) {
  auto [client, server] = net::make_channel_pair();
  sim::FaultPlan plan;
  plan.drop_every_n = 2;  // every second message is lost in transit
  net::ChannelPtr lossy = sim::wrap_faulty(client, nullptr, plan);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(lossy->send(net::Message{1, {0}}).ok());
  int delivered = 0;
  while (server->try_receive().has_value()) ++delivered;
  EXPECT_EQ(delivered, 3);

  auto [c2, s2] = net::make_channel_pair();
  sim::FaultPlan budget;
  budget.fail_after_bytes = 7;  // exactly one 7-byte frame, then the link dies
  net::ChannelPtr dying = sim::wrap_faulty(c2, nullptr, budget);
  ASSERT_TRUE(dying->send(net::Message{1, {9}}).ok());
  EXPECT_FALSE(dying->is_open());
  EXPECT_FALSE(dying->send(net::Message{1, {9}}).ok());
}

TEST(FaultChannel, ReceiveResultExplainsTimeoutVsClosed) {
  auto [client, server] = net::make_channel_pair();
  const auto timed_out = client->receive_result(0.0);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_NE(timed_out.error().find("timed out"), std::string::npos);
  server->close();
  const auto closed = client->receive_result(0.0);
  ASSERT_FALSE(closed.ok());
  EXPECT_NE(closed.error().find("closed by peer"), std::string::npos);
}

// --- migration planning with the ServiceFailed input ---------------------------

ServiceLoadView make_view(uint64_t id, double polys_per_sec,
                          std::vector<NodeCost> assigned, bool failed = false) {
  ServiceLoadView view;
  view.subscriber_id = id;
  view.capacity.polygons_per_sec = polys_per_sec;
  view.assigned = std::move(assigned);
  view.failed = failed;
  return view;
}

TEST(MigrationPlan, FailedServiceReassignedToSurvivors) {
  // Service 2 died holding three nodes; 1 and 3 survive with headroom.
  const std::vector<NodeCost> stranded = {
      {10, 9000, 0, 0, 0}, {11, 5000, 0, 0, 0}, {12, 1000, 0, 0, 0}};
  auto plan = plan_migration({make_view(1, 15e4, {}),
                              make_view(2, 15e4, stranded, /*failed=*/true),
                              make_view(3, 15e4, {})},
                             {.target_fps = 15.0});
  std::set<scene::NodeId> reassigned;
  for (const auto& action : plan) {
    ASSERT_EQ(action.kind, MigrationAction::Kind::MoveNodes);
    EXPECT_EQ(action.from, 2u);
    EXPECT_TRUE(action.to == 1u || action.to == 3u);
    for (const auto& n : action.nodes) reassigned.insert(n.node);
  }
  EXPECT_EQ(reassigned, (std::set<scene::NodeId>{10, 11, 12}));
}

TEST(MigrationPlan, FailedServiceWithNoSurvivorsRequestsRecruitment) {
  const std::vector<NodeCost> stranded = {{10, 9000, 0, 0, 0}};
  auto plan = plan_migration({make_view(2, 15e4, stranded, /*failed=*/true)},
                             {.target_fps = 15.0});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, MigrationAction::Kind::RecruitNeeded);
  EXPECT_EQ(plan[0].from, 2u);
  ASSERT_EQ(plan[0].nodes.size(), 1u);  // the stranded set rides along
  EXPECT_EQ(plan[0].nodes[0].node, 10u);
}

// --- registry leases ----------------------------------------------------------

TEST(RegistryLease, SilentAdvertisementExpiresRenewedOneSurvives) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  services::UddiRegistry registry;
  registry.set_default_lease(5.0);

  RenderService::Options quiet_opts;
  quiet_opts.profile.name = "quiet";
  RenderService quiet(clock, fabric, quiet_opts);
  RenderService::Options chatty_opts;
  chatty_opts.profile.name = "chatty";
  RenderService chatty(clock, fabric, chatty_opts);
  ASSERT_TRUE(quiet.advertise(registry, "inproc:quiet/soap").ok());
  ASSERT_TRUE(chatty.advertise(registry, "inproc:chatty/soap").ok());

  const std::string tmodel = registry.register_tmodel(services::render_service_descriptor());
  ASSERT_EQ(registry.access_points(tmodel).size(), 2u);

  // Only chatty heartbeats; quiet goes silent.
  clock.advance(4.0);
  ASSERT_TRUE(chatty.renew_advertisements(registry).ok());
  clock.advance(3.0);  // quiet silent for 7 s > 5 s lease; chatty for 3 s
  const auto pruned = registry.prune_expired(clock.now());
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned[0].access_point, "inproc:quiet/soap");
  ASSERT_EQ(registry.access_points(tmodel).size(), 1u);
  EXPECT_EQ(registry.access_points(tmodel)[0].access_point, "inproc:chatty/soap");

  // Renewing the pruned advertisement is an explanatory error telling the
  // service to re-register.
  const auto stale = quiet.renew_advertisements(registry);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.error().find("re-register"), std::string::npos);
  // Re-advertising brings it back with a fresh lease.
  ASSERT_TRUE(quiet.advertise(registry, "inproc:quiet/soap").ok());
  EXPECT_EQ(registry.access_points(tmodel).size(), 2u);
  EXPECT_TRUE(registry.prune_expired(clock.now()).empty());
}

// --- end-to-end service failure ------------------------------------------------

class FaultFixture : public testing::Test {
 protected:
  FaultFixture() : fabric_(clock_), data_(clock_, data_options()) {
    obs::FlightRecorder::global().clear();  // isolate per-test dumps
    data_ap_ = fabric_
                   .listen("datahost/data",
                           [this](net::ChannelPtr ch) { data_.accept(std::move(ch)); })
                   .value();
  }

  static DataService::Options data_options() {
    DataService::Options options;
    options.auto_rebalance = false;
    return options;
  }

  RenderService& add_render(const std::string& host, RenderService::Options options = {}) {
    options.profile = sim::centrino_laptop();
    options.profile.name = host;
    options.profile.tri_rate = 10e6;
    auto service = std::make_unique<RenderService>(clock_, fabric_, options);
    (void)service->listen_clients(host + "/clients");
    (void)service->listen_peer(host + "/peer");
    renders_.push_back(std::move(service));
    return *renders_.back();
  }

  // Route a named listener's future inbound connections through `ks` so a
  // single kill() severs them all — what a process crash looks like.
  void arm_kill(const std::string& listener, const sim::KillSwitchPtr& ks) {
    fabric_.set_fault(listener, [ks](net::ChannelPtr ch) {
      return sim::wrap_faulty(std::move(ch), ks);
    });
  }
  void disarm(const std::string& listener) { fabric_.set_fault(listener, nullptr); }

  void pump_all(int rounds = 80) {
    for (int i = 0; i < rounds; ++i) {
      size_t handled = data_.pump();
      for (auto& r : renders_) handled += r->pump();
      if (handled == 0) return;
    }
  }

  util::SimClock clock_;
  InProcFabric fabric_;
  DataService data_;
  std::string data_ap_;
  std::vector<std::unique_ptr<RenderService>> renders_;
};

// The acceptance scenario: three subscribed render services share a
// distributed session; one is killed mid-frame. The frame still
// completes via re-dispatch, byte-identical to the pre-distribution
// reference, and the data service emits a migration plan reassigning
// exactly the dead service's node set.
TEST_F(FaultFixture, KilledServiceMidFrameRedispatchesAndFrameCompletes) {
  SceneTree tree;
  for (int i = 0; i < 6; ++i) {
    const float x = -2.0f + 0.8f * static_cast<float>(i);
    tree.add_child(kRootNode, "part" + std::to_string(i),
                   colored_sphere({0.2f + 0.1f * static_cast<float>(i), 0.5f, 0.9f}),
                   util::Mat4::translate({x, 0, 0}));
  }
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());

  RenderService& main = add_render("main");
  RenderService& victim = add_render("victim");
  RenderService& helper = add_render("helper");

  // Everything the victim dials goes through one kill switch: its data
  // subscription and (below) the tile channel main opens to it.
  auto ks = std::make_shared<sim::KillSwitch>();
  arm_kill("datahost/data", ks);
  ASSERT_TRUE(victim.connect_session(data_ap_, "demo").ok());
  disarm("datahost/data");
  ASSERT_TRUE(main.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(helper.connect_session(data_ap_, "demo").ok());
  pump_all();
  ASSERT_TRUE(main.bootstrapped("demo"));

  // Reference frame from the still-whole-tree replica: the recovered
  // composite must reproduce it byte-for-byte.
  Camera cam;
  cam.eye = {0, 0, 5};
  auto reference = main.render_console("demo", cam, 96, 96);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(data_.distribute("demo").ok());
  pump_all();

  uint64_t victim_id = 0;
  std::set<scene::NodeId> victim_nodes;
  for (const auto& view : data_.subscribers("demo")) {
    if (view.host != "victim") continue;
    victim_id = view.id;
    victim_nodes.insert(view.interest.begin(), view.interest.end());
  }
  ASSERT_NE(victim_id, 0u);
  ASSERT_FALSE(victim_nodes.empty()) << "distribution left the victim idle";

  arm_kill("victim/peer", ks);
  ASSERT_TRUE(main.enable_subset_compositing(
                      "demo", {victim.peer_access_point(), helper.peer_access_point()})
                  .ok());
  // Healthy composite first: peer subsets merge back into the reference.
  (void)main.render_distributed("demo", cam, 96, 96);
  pump_all();
  auto healthy = main.render_distributed("demo", cam, 96, 96);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().color(), reference.value().color());

  // Mid-frame crash: requests for the next frame are already in flight
  // when every one of the victim's channels drops.
  (void)main.render_distributed("demo", cam, 96, 96);
  ks->kill();
  pump_all();

  // The data service re-dispatched the dead service's nodes: the failure
  // plan moves exactly the victim's set, only to survivors.
  const auto plan = data_.last_failure_plan("demo");
  ASSERT_FALSE(plan.empty());
  std::set<scene::NodeId> reassigned;
  for (const auto& action : plan) {
    EXPECT_EQ(action.kind, MigrationAction::Kind::MoveNodes);
    EXPECT_EQ(action.from, victim_id);
    EXPECT_NE(action.to, victim_id);
    for (const auto& n : action.nodes) reassigned.insert(n.node);
  }
  EXPECT_EQ(reassigned, victim_nodes);
  EXPECT_EQ(data_.subscribers("demo").size(), 2u);  // victim dropped

  // The survivors now cover the whole scene between them, so the next
  // composite completes the frame byte-identically to the reference.
  pump_all();
  (void)main.render_distributed("demo", cam, 96, 96);
  pump_all();
  auto recovered = main.render_distributed("demo", cam, 96, 96);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().color(), reference.value().color());
  EXPECT_GE(main.stats().peer_failures, 1u);

  // The kill left a post-mortem in the flight recorder: the failure event,
  // the capacity snapshot the planner saw, and the re-dispatch it chose.
  const std::string dump = obs::FlightRecorder::global().last_dump();
  EXPECT_NE(dump.find("FAIL"), std::string::npos) << dump;
  EXPECT_NE(dump.find("channel closed"), std::string::npos) << dump;
  EXPECT_NE(dump.find("DECIDE"), std::string::npos) << dump;
  EXPECT_NE(dump.find("recovery for demo"), std::string::npos) << dump;
  EXPECT_NE(dump.find("input: service"), std::string::npos) << dump;
  EXPECT_NE(dump.find("chosen: move"), std::string::npos) << dump;
  EXPECT_EQ(data_.stats().recoveries, 1u);
}

TEST_F(FaultFixture, SilentSubscriberLeaseExpiresAndNodesReassigned) {
  // A hung service: its channel stays open but it stops sending. Data-
  // plane lease expiry declares it failed and re-dispatches its nodes.
  SceneTree tree;
  for (int i = 0; i < 4; ++i)
    tree.add_child(kRootNode, "part" + std::to_string(i), colored_sphere({1, 1, 1}, 20));
  DataService::Options options;
  options.auto_rebalance = false;
  options.lease_seconds = 1.0;
  DataService data(clock_, options);
  const std::string ap =
      fabric_.listen("leasehost/data", [&](net::ChannelPtr ch) { data.accept(std::move(ch)); })
          .value();
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());

  RenderService& live = add_render("live");
  RenderService& hung = add_render("hung");
  ASSERT_TRUE(live.connect_session(ap, "demo").ok());
  ASSERT_TRUE(hung.connect_session(ap, "demo").ok());
  for (int i = 0; i < 50; ++i) {
    size_t handled = data.pump() + live.pump() + hung.pump();
    if (handled == 0) break;
  }
  ASSERT_TRUE(data.distribute("demo").ok());
  for (int i = 0; i < 50; ++i) {
    size_t handled = data.pump() + live.pump() + hung.pump();
    if (handled == 0) break;
  }

  uint64_t hung_id = 0;
  std::set<scene::NodeId> hung_nodes;
  for (const auto& view : data.subscribers("demo")) {
    if (view.host != "hung") continue;
    hung_id = view.id;
    hung_nodes.insert(view.interest.begin(), view.interest.end());
  }
  ASSERT_FALSE(hung_nodes.empty());

  // `live` keeps talking (load reports from rendering); `hung` says
  // nothing for longer than the lease. Note: only `hung`'s pump is
  // withheld — its channel remains open the whole time.
  Camera cam;
  cam.eye = {0, 0, 5};
  clock_.advance(1.5);
  (void)live.render_console("demo", cam, 32, 32);  // emits a LoadReport
  (void)live.pump();
  (void)data.pump();

  const auto plan = data.last_failure_plan("demo");
  ASSERT_FALSE(plan.empty());
  std::set<scene::NodeId> reassigned;
  for (const auto& action : plan) {
    EXPECT_EQ(action.kind, MigrationAction::Kind::MoveNodes);
    EXPECT_EQ(action.from, hung_id);
    for (const auto& n : action.nodes) reassigned.insert(n.node);
  }
  EXPECT_EQ(reassigned, hung_nodes);
  const auto views = data.subscribers("demo");
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].host, "live");

  // Lease expiry is a failure-detector event: counted, and dumped with
  // the migration decision that re-homed the hung service's nodes.
  EXPECT_EQ(data.stats().lease_expiries, 1u);
  const std::string dump = obs::FlightRecorder::global().last_dump();
  EXPECT_NE(dump.find("lease expired"), std::string::npos) << dump;
  EXPECT_NE(dump.find("DECIDE"), std::string::npos) << dump;
  EXPECT_NE(dump.find("input: service"), std::string::npos) << dump;
  EXPECT_NE(dump.find("chosen: move"), std::string::npos) << dump;
}

TEST_F(FaultFixture, CanaryVerdictEvictsBeforeLeaseExpiry) {
  // The health plane's fast path: an Unhealthy canary verdict condemns a
  // subscriber, so eviction and re-dispatch fire on the next detector
  // round — long before the lease would lapse on its own.
  SceneTree tree;
  for (int i = 0; i < 4; ++i)
    tree.add_child(kRootNode, "part" + std::to_string(i), colored_sphere({1, 1, 1}, 20));
  DataService::Options options;
  options.auto_rebalance = false;
  options.lease_seconds = 10.0;  // generous lease: eviction must beat it
  DataService data(clock_, options);
  const std::string ap =
      fabric_.listen("leasehost/data", [&](net::ChannelPtr ch) { data.accept(std::move(ch)); })
          .value();
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());

  RenderService& live = add_render("live");
  RenderService& hung = add_render("hung");
  ASSERT_TRUE(live.connect_session(ap, "demo").ok());
  ASSERT_TRUE(hung.connect_session(ap, "demo").ok());
  for (int i = 0; i < 50; ++i) {
    size_t handled = data.pump() + live.pump() + hung.pump();
    if (handled == 0) break;
  }
  ASSERT_TRUE(data.distribute("demo").ok());
  for (int i = 0; i < 50; ++i) {
    size_t handled = data.pump() + live.pump() + hung.pump();
    if (handled == 0) break;
  }

  uint64_t hung_id = 0;
  std::set<scene::NodeId> hung_nodes;
  for (const auto& view : data.subscribers("demo")) {
    if (view.host != "hung") continue;
    hung_id = view.id;
    hung_nodes.insert(view.interest.begin(), view.interest.end());
  }
  ASSERT_FALSE(hung_nodes.empty());

  // The blackbox canary declares `hung` Unhealthy (stand-in for two
  // consecutive failed stream probes); everyone else looks fine.
  data.set_health_advisor([](const std::string& host) {
    obs::HealthVerdict verdict;
    verdict.host = host;
    if (host == "hung") {
      verdict.state = obs::HealthState::Unhealthy;
      verdict.reason = "2 consecutive probe failures, last: frame stream: timed out";
    } else {
      verdict.state = obs::HealthState::Healthy;
    }
    return verdict;
  });

  Camera cam;
  cam.eye = {0, 0, 5};
  clock_.advance(0.5);  // a twentieth of the lease
  (void)live.render_console("demo", cam, 32, 32);  // emits a LoadReport
  (void)live.pump();
  (void)data.pump();

  // Evicted by verdict, not by lease: the lease counter never moved.
  EXPECT_EQ(data.stats().canary_evictions, 1u);
  EXPECT_EQ(data.stats().lease_expiries, 0u);

  const auto plan = data.last_failure_plan("demo");
  ASSERT_FALSE(plan.empty());
  std::set<scene::NodeId> reassigned;
  for (const auto& action : plan) {
    EXPECT_EQ(action.kind, MigrationAction::Kind::MoveNodes);
    EXPECT_EQ(action.from, hung_id);
    for (const auto& n : action.nodes) reassigned.insert(n.node);
  }
  EXPECT_EQ(reassigned, hung_nodes);
  const auto views = data.subscribers("demo");
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].host, "live");

  const std::string dump = obs::FlightRecorder::global().last_dump();
  EXPECT_NE(dump.find("evicted by canary verdict"), std::string::npos) << dump;
  EXPECT_NE(dump.find("chosen: move"), std::string::npos) << dump;
}

TEST_F(FaultFixture, TileTimeoutAbandonsStalledAssistant) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({0.9f, 0.6f, 0.1f}, 24));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());

  RenderService::Options impatient;
  impatient.tile_timeout = 1.0;
  RenderService& main = add_render("main", impatient);
  RenderService& helper = add_render("helper");
  ASSERT_TRUE(main.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(helper.connect_session(data_ap_, "demo").ok());
  pump_all();
  ASSERT_TRUE(main.enable_tile_assist("demo", {helper.peer_access_point()}).ok());
  helper.set_assist_stall(30.0);  // effectively hung, channel stays open

  Camera cam;
  cam.eye = {0, 0, 3};
  auto reference = main.render_console("demo", cam, 64, 64);
  ASSERT_TRUE(reference.ok());

  (void)main.render_distributed("demo", cam, 64, 64);  // dispatch, awaiting
  pump_all();
  clock_.advance(2.0);  // past tile_timeout, well before the stalled reply
  auto frame = main.render_distributed("demo", cam, 64, 64);
  ASSERT_TRUE(frame.ok());
  // The assistant was abandoned and its tile re-dispatched to the local
  // renderer: the frame is complete and byte-identical.
  EXPECT_EQ(frame.value().color(), reference.value().color());
  EXPECT_EQ(main.stats().peer_failures, 1u);
  EXPECT_EQ(main.stats().tiles_redispatched, 1u);
}

// --- fabric race regression (run under -DRAVE_SANITIZE=thread, label tsan) -----

TEST(FabricRace, UnlistenWaitsForInFlightDials) {
  // Regression: unlisten() used to erase the listener while a concurrent
  // dial could still be invoking its AcceptFn — a use-after-free of
  // whatever the callback captured. unlisten must drain in-flight dials.
  util::SimClock clock;
  InProcFabric fabric(clock);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};

  std::vector<std::thread> dialers;
  dialers.reserve(4);
  for (int t = 0; t < 4; ++t)
    dialers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) (void)fabric.dial("inproc:svc");
    });

  for (int round = 0; round < 200; ++round) {
    // The callback owns heap state; destroying it while a dial still runs
    // the callback is exactly the race tsan flags.
    auto owned = std::make_shared<uint64_t>(static_cast<uint64_t>(round));
    auto listen = fabric.listen("svc", [owned, &sink](net::ChannelPtr channel) {
      sink.fetch_add(*owned, std::memory_order_relaxed);
      channel->close();
    });
    ASSERT_TRUE(listen.ok());
    fabric.unlisten("svc");
  }
  stop.store(true);
  for (auto& thread : dialers) thread.join();
  SUCCEED() << "accepted work total " << sink.load();
}

}  // namespace
}  // namespace rave::core

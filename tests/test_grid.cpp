// RaveGrid assembly tests: discovery through the UDDI registry, SOAP
// control plane, recruitment, and the fig. 4 registry browser.
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

using scene::kRootNode;
using scene::SceneTree;

SceneTree ball_scene(int detail = 16) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.8f, detail, detail));
  return tree;
}

TEST(Grid, HostsAndAccessPoints) {
  util::SimClock clock;
  RaveGrid grid(clock);
  grid.add_data_service("adrenochrome");
  RenderService::Options options;
  options.profile = sim::xeon_desktop();
  grid.add_render_service("tower", options);

  EXPECT_NE(grid.data_access_point("adrenochrome"), "");
  EXPECT_NE(grid.soap_access_point("tower"), "");
  EXPECT_EQ(grid.data_access_point("nowhere"), "");
  EXPECT_NE(grid.data_service("adrenochrome"), nullptr);
  EXPECT_NE(grid.render_service("tower"), nullptr);
  EXPECT_EQ(grid.render_service("adrenochrome"), nullptr);
}

TEST(Grid, JoinBootstrapsReplica) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("Skull", ball_scene()).ok());
  grid.add_render_service("tower");
  ASSERT_TRUE(grid.join("tower", "datahost", "Skull").ok());
  EXPECT_TRUE(grid.render_service("tower")->bootstrapped("Skull"));
}

TEST(Grid, SoapControlPlane) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("Skull", ball_scene()).ok());
  grid.add_render_service("tower");
  ASSERT_TRUE(grid.join("tower", "datahost", "Skull").ok());

  // Query the data service via SOAP, as a remote client browser would.
  auto proxy = grid.soap_proxy("datahost", "data");
  ASSERT_TRUE(proxy.ok());
  // Drive the call single-threaded: container pumps happen in pump_all, so
  // use the threaded container path instead.
  grid.container("datahost")->start();
  auto sessions = proxy.value().call("listSessions", {}, 2.0);
  grid.container("datahost")->stop();
  ASSERT_TRUE(sessions.ok()) << sessions.error();
  ASSERT_NE(sessions.value().as_list(), nullptr);
  ASSERT_EQ(sessions.value().as_list()->size(), 1u);
  EXPECT_EQ(sessions.value().as_list()->front().as_string(), "Skull");
}

TEST(Grid, AdvertiseAndRegistryListing) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("adrenochrome");
  ASSERT_TRUE(data.create_session("Skull", ball_scene()).ok());
  grid.add_render_service("tower");
  ASSERT_TRUE(grid.join("tower", "adrenochrome", "Skull").ok());
  grid.advertise_all();

  // Both tModels registered, both businesses present.
  EXPECT_TRUE(grid.registry().find_tmodel_by_name("RaveDataService").has_value());
  EXPECT_TRUE(grid.registry().find_tmodel_by_name("RaveRenderService").has_value());
  const std::string listing = grid.registry_listing();
  EXPECT_NE(listing.find("adrenochrome"), std::string::npos);
  EXPECT_NE(listing.find("tower"), std::string::npos);
  EXPECT_NE(listing.find("data:Skull"), std::string::npos);
  EXPECT_NE(listing.find("render:Skull"), std::string::npos);
  EXPECT_NE(listing.find("Create new instance"), std::string::npos);
}

TEST(Grid, RecruitmentPullsIdleServicesIntoSession) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("Skull", ball_scene()).ok());
  grid.add_render_service("laptop");
  RenderService::Options strong;
  strong.profile = sim::xeon_desktop();
  grid.add_render_service("tower", strong);
  ASSERT_TRUE(grid.join("laptop", "datahost", "Skull").ok());
  grid.advertise_all();  // tower advertises as idle

  // tower is not in the session yet.
  EXPECT_EQ(data.subscribers("Skull").size(), 1u);
  const size_t recruited = grid.recruit("datahost", "Skull");
  EXPECT_EQ(recruited, 1u);
  grid.pump_until_idle();
  EXPECT_EQ(data.subscribers("Skull").size(), 2u);
  EXPECT_TRUE(grid.render_service("tower")->bootstrapped("Skull"));
  // Recruiting again is a no-op: everyone is already a member.
  EXPECT_EQ(grid.recruit("datahost", "Skull"), 0u);
}

TEST(Grid, EndToEndThinClientThroughDiscovery) {
  // The full paper flow: discover the render service via UDDI, get its
  // client endpoint over SOAP, connect, and pull a frame.
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("Skull", ball_scene()).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "Skull").ok());
  grid.advertise_all();

  // Discovery: find render services via the registry (the UDDI scan).
  const auto tmodel = grid.registry().find_tmodel_by_name("RaveRenderService");
  ASSERT_TRUE(tmodel.has_value());
  const auto bindings = grid.registry().access_points(tmodel->key);
  ASSERT_FALSE(bindings.empty());

  // Control plane: ask the advertised host for its client endpoint.
  grid.container("laptop")->start();
  auto proxy = grid.soap_proxy("laptop", "render");
  ASSERT_TRUE(proxy.ok());
  auto endpoint = proxy.value().call("connectThinClient", {services::SoapValue{"Skull"}}, 2.0);
  grid.container("laptop")->stop();
  ASSERT_TRUE(endpoint.ok()) << endpoint.error();

  // Data plane: binary frames.
  ThinClient pda(clock, grid.fabric());
  ASSERT_TRUE(pda.connect(endpoint.value().as_string(), "Skull").ok());
  scene::Camera cam;
  cam.eye = {0, 0, 3};
  auto frame = pda.request_frame(cam, 100, 100, 5.0, [&grid] { grid.pump_all(); });
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().width, 100);
}

TEST(Grid, MigrationRecruitsThroughRegistry) {
  // End-to-end §3.2.7: an overloaded lone service triggers recruitment of
  // an advertised idle service via the data service's recruiter hook.
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService::Options data_options;
  data_options.target_fps = 15.0;
  DataService& data = grid.add_data_service("datahost", data_options);

  SceneTree tree;
  for (int i = 0; i < 4; ++i)
    tree.add_child(kRootNode, "part" + std::to_string(i),
                   mesh::make_uv_sphere(0.6f, 24, 18));
  ASSERT_TRUE(data.create_session("big", std::move(tree)).ok());
  const auto costs = payload_costs(*data.session_tree("big"));
  double total = 0;
  for (const auto& c : costs) total += c.work_units();

  RenderService::Options weak_options;
  weak_options.profile.tri_rate = total * 0.5 * 15.0;  // holds half the scene
  grid.add_render_service("weak", weak_options);
  RenderService::Options strong_options;
  strong_options.profile = sim::xeon_desktop();
  grid.add_render_service("strong", strong_options);

  ASSERT_TRUE(grid.join("weak", "datahost", "big").ok());
  grid.advertise_all();
  EXPECT_EQ(data.subscribers("big").size(), 1u);

  // Force the weak service into the overloaded band with slow reports,
  // then rebalance: no in-session spare capacity → recruit via UDDI.
  scene::Camera cam;
  cam.eye = {0, 0, 4};
  for (int i = 0; i < 30; ++i) {
    clock.advance(0.2);
    (void)grid.render_service("weak")->render_console("big", cam, 32, 32);
    grid.pump_until_idle();
  }
  (void)data.rebalance("big");
  grid.pump_until_idle();
  // The strong host has been recruited into the session.
  EXPECT_EQ(data.subscribers("big").size(), 2u);
  EXPECT_TRUE(grid.render_service("strong")->bootstrapped("big"));
}

}  // namespace
}  // namespace rave::core

// Grid health plane tests: hybrid logical clock semantics, the flight
// export/decode round trip, the cross-host timeline collector (causal
// merge order, dedup, gap semantics, byte stability under SimClock), the
// blackbox canary state machine against a real grid stream, and the
// status "health" SOAP round trip. Everything runs under virtual time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/status.hpp"
#include "mesh/primitives.hpp"
#include "obs/canary.hpp"
#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/hlc.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace rave::obs {
namespace {

// --- hybrid logical clock ----------------------------------------------------

TEST(Hlc, TickIsValidAtTimeZeroAndStrictlyMonotone) {
  util::SimClock clock;
  Hlc hlc;
  hlc.set_clock(&clock);
  const HlcStamp first = hlc.tick();
  // Even at SimClock t=0 an issued stamp must be distinguishable from the
  // zero (unstamped) value.
  EXPECT_TRUE(first.valid());
  EXPECT_GE(first.logical, 1u);

  HlcStamp prev = first;
  for (int i = 0; i < 5; ++i) {
    const HlcStamp next = hlc.tick();
    EXPECT_TRUE(prev < next) << "tick " << i;
    prev = next;
  }
  // Wall stood still, so logical carried the ordering.
  EXPECT_EQ(prev.wall, first.wall);

  clock.advance(0.5);
  const HlcStamp advanced = hlc.tick();
  EXPECT_GT(advanced.wall, prev.wall);
  EXPECT_EQ(advanced.logical, 1u);  // fresh wall reading resets the tie-breaker
  hlc.set_clock(nullptr);
}

TEST(Hlc, ObserveOrdersReceiveAfterRemoteSend) {
  util::SimClock clock_a;
  util::SimClock clock_b;
  clock_a.advance(10.0);  // A's wall clock runs well ahead of B's
  Hlc a;
  Hlc b;
  a.set_clock(&clock_a);
  b.set_clock(&clock_b);

  const HlcStamp sent = a.tick();
  const HlcStamp received = b.observe(sent);
  // Receive is causally after the send even though B's physical clock is
  // behind: the merged wall never runs backwards past the remote stamp.
  EXPECT_TRUE(sent < received);
  EXPECT_GE(received.wall, sent.wall);
  // And B's subsequent local events stay after the receive.
  EXPECT_TRUE(received < b.tick());
  a.set_clock(nullptr);
  b.set_clock(nullptr);
}

// --- flight export round trip ------------------------------------------------

TEST(Timeline, ExportDecodeRoundTripPreservesMultilineText) {
  FlightRecorder recorder;
  FlightEvent decision;
  decision.kind = FlightEvent::Kind::Decision;
  decision.time = 1.25;
  decision.component = "data";
  decision.text = "recovery for demo\n  input: service 2 failed\n  chosen: move 3 -> 1";
  decision.hlc = {1'250'000, 3};
  recorder.record(decision);
  FlightEvent note;
  note.kind = FlightEvent::Kind::Note;
  note.time = 2.0;
  note.component = "render";
  note.text = "backslash \\ and trailing";
  note.trace_id = 42;
  recorder.record(note);

  const std::vector<FlightEvent> decoded = decode_flight_events(recorder.export_events());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].kind, FlightEvent::Kind::Decision);
  EXPECT_DOUBLE_EQ(decoded[0].time, 1.25);
  EXPECT_EQ(decoded[0].component, "data");
  EXPECT_EQ(decoded[0].text, decision.text);
  EXPECT_EQ(decoded[0].hlc.wall, 1'250'000u);
  EXPECT_EQ(decoded[0].hlc.logical, 3u);
  EXPECT_EQ(decoded[1].text, note.text);
  EXPECT_EQ(decoded[1].trace_id, 42u);
  EXPECT_FALSE(decoded[1].hlc.valid());  // unstamped events stay unstamped
}

TEST(Timeline, DecodeSkipsMalformedLines) {
  const auto decoded = decode_flight_events("garbage line\n3 0 1 0.5 0 note ok\n9 x\n");
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].component, "note");
  EXPECT_EQ(decoded[0].text, "ok");
}

// --- timeline collector ------------------------------------------------------

std::string export_of(const std::vector<FlightEvent>& events) {
  FlightRecorder recorder;
  for (const FlightEvent& e : events) recorder.record(e);
  return recorder.export_events();
}

FlightEvent stamped_note(uint64_t wall, uint32_t logical, const std::string& text,
                         double time = 0) {
  FlightEvent event;
  event.kind = FlightEvent::Kind::Note;
  event.time = time;
  event.component = "test";
  event.text = text;
  event.hlc = {wall, logical};
  return event;
}

TEST(Timeline, MergedOrdersByHlcAcrossHostsAndDedupsSharedRings) {
  util::SimClock clock;
  TimelineCollector collector(clock);
  // Host B's wall clock reads *later* recorder times, but its HLC stamps
  // are causally earlier: the merge must follow the stamps.
  const FlightEvent shared = stamped_note(5, 1, "shared", 9.0);
  collector.add_target({"a", [&]() -> util::Result<std::string> {
    return export_of({stamped_note(20, 1, "a-late", 1.0), shared});
  }});
  collector.add_target({"b", [&]() -> util::Result<std::string> {
    return export_of({stamped_note(10, 2, "b-early", 8.0), shared});
  }});
  EXPECT_EQ(collector.poll_now(), 2u);

  const std::vector<TimelineEvent> merged = collector.merged();
  ASSERT_EQ(merged.size(), 3u);  // the shared event appears exactly once
  EXPECT_EQ(merged[0].event.text, "shared");
  EXPECT_EQ(merged[0].host, "a");  // dedup keeps the first supplying host
  EXPECT_EQ(merged[1].event.text, "b-early");
  EXPECT_EQ(merged[2].event.text, "a-late");

  const std::string text = format_timeline(merged);
  EXPECT_NE(text.find("b-early"), std::string::npos) << text;
  EXPECT_LT(text.find("b-early"), text.find("a-late")) << text;
}

TEST(Timeline, FailedPullIsAGapThatKeepsPreviousEvents) {
  util::SimClock clock;
  TimelineCollector::Options options;
  options.interval = 1.0;
  TimelineCollector collector(clock, options);
  bool dead = false;
  collector.add_target({"flaky", [&]() -> util::Result<std::string> {
    if (dead) return util::make_error("host unreachable");
    return export_of({stamped_note(1, 1, "before the crash")});
  }});

  clock.advance(1.0);
  EXPECT_EQ(collector.tick(), 1u);
  ASSERT_EQ(collector.merged().size(), 1u);

  dead = true;
  const uint64_t gaps_before =
      MetricsRegistry::global().counter("rave_timeline_gaps_total", {{"host", "flaky"}}).value();
  clock.advance(1.0);
  EXPECT_EQ(collector.tick(), 1u);
  clock.advance(1.0);
  EXPECT_EQ(collector.tick(), 1u);

  const auto health = collector.health();
  ASSERT_EQ(health.size(), 1u);
  EXPECT_EQ(health[0].pulls, 1u);
  EXPECT_EQ(health[0].gaps, 2u);
  EXPECT_NE(health[0].last_error.find("unreachable"), std::string::npos);
  EXPECT_EQ(
      MetricsRegistry::global().counter("rave_timeline_gaps_total", {{"host", "flaky"}}).value(),
      gaps_before + 2);
  // The last successful pull's events survive the gap — a dead host's
  // history stays in the merged timeline.
  ASSERT_EQ(collector.merged().size(), 1u);
  EXPECT_EQ(collector.merged()[0].event.text, "before the crash");
  EXPECT_EQ(collector.target_count(), 1u);  // still subscribed; recovery resumes
}

}  // namespace
}  // namespace rave::obs

namespace rave::core {
namespace {

// --- canary + health SOAP over a real grid -----------------------------------

TEST(HealthPlane, CanaryStateMachineAndHealthSoapRoundTrip) {
  obs::MetricsRegistry::global().reset_values();
  obs::FlightRecorder::global().clear();
  util::SimClock clock;
  obs::set_clock(&clock);
  {
    RaveGrid grid(clock, net::ethernet_100mbit());
    DataService& data = grid.add_data_service("datahost");
    scene::SceneTree tree;
    tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 20, 15));
    ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
    grid.add_render_service("laptop");
    ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
    ASSERT_TRUE(data.distribute("demo").ok());

    obs::Canary::Options options;
    options.frame_timeout = 0.25;
    options.unhealthy_after = 2;
    options.qualities = {compress::QualityClass::Workstation};
    grid.enable_health_plane(options);
    grid.watch_streams("demo");
    ASSERT_EQ(grid.canary()->probe_count(), 1u);

    // Before any probe completes, the host's verdict — and the status
    // "health" SOAP answer — is Unknown.
    EXPECT_EQ(grid.canary()->verdict("laptop").state, obs::HealthState::Unknown);

    const auto pump = [&grid] { grid.pump_all(); };
    scene::Camera cam;
    cam.eye = {0, 0, 3};
    // First round subscribes the probe (no frame published yet: strike 1).
    (void)grid.canary()->probe_all(pump);
    EXPECT_EQ(grid.canary()->verdict("laptop").frames_failed, 1u);
    // Publish through the real stream path, then probe: Healthy.
    (void)grid.render_service("laptop")->publish_stream_frame("demo", cam, 96, 72);
    grid.pump_all();
    (void)grid.canary()->probe_all(pump);
    obs::HealthVerdict verdict = grid.canary()->verdict("laptop");
    EXPECT_EQ(verdict.state, obs::HealthState::Healthy);
    EXPECT_GE(verdict.frames_ok, 1u);
    EXPECT_GE(verdict.join_seconds, 0.0);
    EXPECT_GE(verdict.last_frame_age, 0.0);

    // The host's status endpoint serves the same verdict over SOAP.
    services::SoapCall call;
    call.service = "status";
    call.method = "health";
    call.call_id = 1;
    const services::SoapResponse response = grid.container("laptop")->dispatch(call);
    ASSERT_FALSE(response.is_fault) << response.fault_message;
    const auto parsed = parse_health_report(response.result);
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().host, "laptop");
    EXPECT_EQ(parsed.value().state, obs::HealthState::Healthy);
    EXPECT_EQ(parsed.value().frames_ok, verdict.frames_ok);

    // The stream goes quiet: two consecutive probe timeouts escalate to
    // Unhealthy, and the dashboard shows it.
    (void)grid.canary()->probe_all(pump);
    (void)grid.canary()->probe_all(pump);
    verdict = grid.canary()->verdict("laptop");
    EXPECT_EQ(verdict.state, obs::HealthState::Unhealthy);
    EXPECT_NE(verdict.reason.find("consecutive probe failures"), std::string::npos)
        << verdict.reason;
    EXPECT_NE(grid.status_dashboard().find("unhealthy"), std::string::npos);

    // Recovery: the standing subscription survived the misses, so one
    // fresh frame flips the verdict straight back to Healthy.
    (void)grid.render_service("laptop")->publish_stream_frame("demo", cam, 96, 72);
    grid.pump_all();
    (void)grid.canary()->probe_all(pump);
    EXPECT_EQ(grid.canary()->verdict("laptop").state, obs::HealthState::Healthy);
  }
  obs::set_clock(nullptr);
}

// --- the acceptance scenario: cross-host kill, byte-stable merged timeline ----

// One full failure story under virtual time: two render services share a
// session, one goes silent, its lease expires and the planner re-homes
// its nodes; the timeline collector pulls both hosts' rings (the silent
// host's pull gaps out) and merges the causal order.
std::string run_kill_timeline() {
  obs::MetricsRegistry::global().reset_values();
  obs::FlightRecorder::global().clear();
  obs::Hlc::global().reset();
  obs::Hlc::global().set_enabled(true);
  util::SimClock clock;
  obs::set_clock(&clock);
  std::string text;
  {
    InProcFabric fabric(clock);
    DataService::Options options;
    options.auto_rebalance = false;
    options.lease_seconds = 1.0;
    DataService data(clock, options);
    const std::string ap =
        fabric.listen("datahost/data", [&](net::ChannelPtr ch) { data.accept(std::move(ch)); })
            .value();
    scene::SceneTree tree;
    for (int i = 0; i < 4; ++i) {
      scene::MeshData mesh = mesh::make_uv_sphere(0.6f, 16, 12);
      mesh.base_color = {1, 1, 1};
      tree.add_child(scene::kRootNode, "part" + std::to_string(i), std::move(mesh));
    }
    EXPECT_TRUE(data.create_session("demo", std::move(tree)).ok());

    const auto make_render = [&](const std::string& host) {
      RenderService::Options render_options;
      render_options.profile = sim::centrino_laptop();
      render_options.profile.name = host;
      return std::make_unique<RenderService>(clock, fabric, render_options);
    };
    auto live = make_render("live");
    auto hung = make_render("hung");
    (void)live->listen_clients("live/clients");
    (void)hung->listen_clients("hung/clients");
    EXPECT_TRUE(live->connect_session(ap, "demo").ok());
    EXPECT_TRUE(hung->connect_session(ap, "demo").ok());
    const auto pump_both = [&] {
      for (int i = 0; i < 50; ++i)
        if (data.pump() + live->pump() + hung->pump() == 0) break;
    };
    pump_both();
    EXPECT_TRUE(data.distribute("demo").ok());
    pump_both();

    obs::TimelineCollector collector(clock);
    bool hung_dead = false;
    collector.add_target({"datahost", []() -> util::Result<std::string> {
      return obs::FlightRecorder::global().export_events();
    }});
    collector.add_target({"hung", [&]() -> util::Result<std::string> {
      if (hung_dead) return util::make_error("host unreachable");
      return obs::FlightRecorder::global().export_events();
    }});
    (void)collector.poll_now();

    // The hung service goes silent past its lease, mid-session; only the
    // live host keeps talking.
    hung_dead = true;
    scene::Camera cam;
    cam.eye = {0, 0, 5};
    clock.advance(1.5);
    (void)live->render_console("demo", cam, 32, 32);  // emits a LoadReport
    (void)live->pump();
    (void)data.pump();
    EXPECT_EQ(data.stats().lease_expiries, 1u);
    EXPECT_FALSE(data.last_failure_plan("demo").empty());

    (void)collector.poll_now();
    text = format_timeline(collector.merged());
  }
  obs::set_clock(nullptr);
  obs::Hlc::global().set_enabled(false);
  obs::Hlc::global().reset();
  return text;
}

TEST(HealthPlane, KillMidSessionTimelineIsCausallyOrderedAndByteStable) {
  const std::string first = run_kill_timeline();
  const std::string second = run_kill_timeline();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // SimClock + HLC → identical merged bytes

  // Causal story reads in order: the lease expiry, then the re-dispatch
  // decision that re-homed the dead service's nodes.
  const size_t expiry = first.find("lease expired");
  const size_t decide = first.find("recovery for demo");
  const size_t chosen = first.find("chosen: move");
  ASSERT_NE(expiry, std::string::npos) << first;
  ASSERT_NE(decide, std::string::npos) << first;
  ASSERT_NE(chosen, std::string::npos) << first;
  EXPECT_LT(expiry, decide) << first;
  EXPECT_LT(decide, chosen) << first;
  // Events merged under HLC stamps show the causal column, not dashes.
  EXPECT_NE(first.find("|"), std::string::npos) << first;
}

}  // namespace
}  // namespace rave::core

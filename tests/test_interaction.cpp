// Interaction-model tests (paper §5.2): pick rays, triangle-accurate
// selection with occlusion, per-kind interrogation, and drag execution
// producing transport-ready SceneUpdates.
#include <gtest/gtest.h>

#include "core/interaction.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

using scene::Camera;
using scene::kRootNode;
using scene::NodeId;
using scene::SceneTree;
using util::Vec3;

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 5};
  cam.target = {0, 0, 0};
  return cam;
}

TEST(PickRay, CenterPixelLooksAlongView) {
  const Camera cam = front_camera();
  const PickRay ray = pick_ray(cam, 50, 50, 100, 100);
  EXPECT_NEAR(ray.origin.x, cam.eye.x, 1e-4f);
  EXPECT_NEAR(ray.direction.z, -1.0f, 0.02f);
  // Top-left pixel aims up-left.
  const PickRay corner = pick_ray(cam, 0, 0, 100, 100);
  EXPECT_LT(corner.direction.x, 0.0f);
  EXPECT_GT(corner.direction.y, 0.0f);
}

TEST(Pick, HitsCenterObjectAndMissesBackground) {
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1.0f, 24, 16));
  const Camera cam = front_camera();
  auto hit = pick_pixel(tree, cam, 50, 50, 100, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, ball);
  // The hit point is on the front of the sphere.
  EXPECT_NEAR(hit->world_point.z, 1.0f, 0.05f);
  EXPECT_NEAR(hit->distance, 4.0f, 0.1f);
  // Far corner misses.
  EXPECT_FALSE(pick_pixel(tree, cam, 1, 1, 100, 100).has_value());
}

TEST(Pick, NearestOfTwoOverlappingWins) {
  SceneTree tree;
  const NodeId front = tree.add_child(kRootNode, "front", mesh::make_uv_sphere(0.5f, 16, 12),
                                      util::Mat4::translate({0, 0, 2}));
  tree.add_child(kRootNode, "back", mesh::make_uv_sphere(1.0f, 16, 12),
                 util::Mat4::translate({0, 0, -2}));
  auto hit = pick_pixel(tree, front_camera(), 50, 50, 100, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, front);
}

TEST(Pick, RespectsNodeTransforms) {
  SceneTree tree;
  const NodeId moved = tree.add_child(kRootNode, "moved", mesh::make_uv_sphere(0.5f, 16, 12),
                                      util::Mat4::translate({1.0f, 0, 0}));
  const Camera cam = front_camera();
  EXPECT_FALSE(pick_pixel(tree, cam, 50, 50, 100, 100).has_value());  // center empty
  // The sphere at x=+1 projects right of center (~ndc 0.48 at depth 5).
  auto hit = pick_pixel(tree, cam, 74, 50, 100, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, moved);
}

TEST(Pick, BoundsPickForPointsAndVolumes) {
  SceneTree tree;
  scene::PointCloudData cloud;
  cloud.positions = {{-0.2f, -0.2f, -0.1f}, {0.2f, 0.2f, 0.1f}};  // box straddles the origin
  const NodeId pts = tree.add_child(kRootNode, "pts", std::move(cloud));
  auto hit = pick_pixel(tree, front_camera(), 50, 50, 100, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, pts);
}

TEST(Interrogate, MenusMatchNodeKind) {
  SceneTree tree;
  const NodeId mesh_node = tree.add_child(kRootNode, "m", mesh::make_uv_sphere(1, 8, 6));
  scene::VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 2;
  grid.values.assign(8, 1.0f);
  const NodeId vol_node = tree.add_child(kRootNode, "v", std::move(grid));
  scene::AvatarData avatar;
  const NodeId avatar_node = tree.add_child(kRootNode, "a", std::move(avatar));

  const auto has = [](const std::vector<InteractionSpec>& specs, InteractionKind kind) {
    for (const auto& s : specs)
      if (s.kind == kind) return true;
    return false;
  };
  const auto mesh_menu = interrogate(tree, mesh_node);
  EXPECT_TRUE(has(mesh_menu, InteractionKind::TranslateObject));
  EXPECT_TRUE(has(mesh_menu, InteractionKind::DeleteObject));
  EXPECT_FALSE(has(mesh_menu, InteractionKind::AdjustTransfer));

  const auto vol_menu = interrogate(tree, vol_node);
  EXPECT_TRUE(has(vol_menu, InteractionKind::AdjustTransfer));
  EXPECT_FALSE(has(vol_menu, InteractionKind::DeleteObject));

  const auto avatar_menu = interrogate(tree, avatar_node);
  EXPECT_TRUE(has(avatar_menu, InteractionKind::RotateCameraAround));
  EXPECT_FALSE(has(avatar_menu, InteractionKind::DeleteObject));  // look, don't touch

  EXPECT_TRUE(interrogate(tree, 9999).empty());
}

TEST(ApplyInteraction, TranslateProducesViewPlaneMove) {
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1, 8, 6));
  Camera cam = front_camera();
  auto update = apply_interaction(tree, ball, InteractionKind::TranslateObject,
                                  {.dx = 0.5f, .dy = 0.0f}, cam);
  ASSERT_TRUE(update.has_value());
  ASSERT_TRUE(update->apply(tree).ok());
  const Vec3 pos = tree.find(ball)->transform.transform_point({0, 0, 0});
  EXPECT_GT(pos.x, 0.5f);            // moved right
  EXPECT_NEAR(pos.y, 0.0f, 1e-4f);   // not vertically
  EXPECT_NEAR(pos.z, 0.0f, 1e-4f);   // stayed in the view plane
}

TEST(ApplyInteraction, DeleteProducesRemove) {
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1, 8, 6));
  Camera cam = front_camera();
  auto update = apply_interaction(tree, ball, InteractionKind::DeleteObject, {}, cam);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(update->kind, scene::UpdateKind::RemoveNode);
  ASSERT_TRUE(update->apply(tree).ok());
  EXPECT_FALSE(tree.contains(ball));
}

TEST(ApplyInteraction, RotateCameraAroundRetargetsWithoutUpdate) {
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1, 8, 6),
                                     util::Mat4::translate({3, 0, 0}));
  Camera cam = front_camera();
  auto update = apply_interaction(tree, ball, InteractionKind::RotateCameraAround,
                                  {.dx = 0.25f, .dy = 0.0f}, cam);
  EXPECT_FALSE(update.has_value());  // camera-local, nothing to transmit
  EXPECT_NEAR(cam.target.x, 3.0f, 1e-4f);
  EXPECT_NE(cam.eye, front_camera().eye);
}

TEST(ApplyInteraction, TransferFunctionEditStaysValid) {
  SceneTree tree;
  scene::VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 2;
  grid.values.assign(8, 1.0f);
  grid.iso_low = 0.2f;
  grid.iso_high = 0.9f;
  const NodeId vol = tree.add_child(kRootNode, "v", std::move(grid));
  Camera cam = front_camera();
  auto update = apply_interaction(tree, vol, InteractionKind::AdjustTransfer,
                                  {.dx = 10.0f, .dy = -0.5f}, cam);  // extreme drag
  ASSERT_TRUE(update.has_value());
  ASSERT_TRUE(update->apply(tree).ok());
  const auto& adjusted = std::get<scene::VoxelGridData>(tree.find(vol)->payload);
  EXPECT_LT(adjusted.iso_low, adjusted.iso_high);  // clamped
  EXPECT_GT(adjusted.opacity_scale, 0.0f);
}

TEST(ApplyInteraction, UnsupportedCombinationRefused) {
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1, 8, 6));
  Camera cam = front_camera();
  // Transfer-function edits are volume-only; the transport validates even
  // if a buggy GUI offers it.
  EXPECT_FALSE(
      apply_interaction(tree, ball, InteractionKind::AdjustTransfer, {}, cam).has_value());
  EXPECT_FALSE(
      apply_interaction(tree, 424242, InteractionKind::DeleteObject, {}, cam).has_value());
}

TEST(ApplyInteraction, EndToEndThroughDataService) {
  // A picked-and-dragged edit travels the same path as any update: the
  // returned SceneUpdate is transport-ready.
  SceneTree tree;
  const NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(1, 12, 8));
  Camera cam = front_camera();
  auto hit = pick_pixel(tree, cam, 50, 50, 100, 100);
  ASSERT_TRUE(hit.has_value());
  auto update = apply_interaction(tree, hit->node, InteractionKind::RotateObject,
                                  {.dx = 0.5f, .dy = 0.0f}, cam);
  ASSERT_TRUE(update.has_value());
  util::ByteWriter w;
  scene::write_update(w, *update);
  util::ByteReader r(w.data());
  auto decoded = scene::read_update(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().node, ball);
  EXPECT_EQ(decoded.value().kind, scene::UpdateKind::SetTransform);
}

}  // namespace
}  // namespace rave::core

// LDAP-alternative directory tests (paper §4.3: "standard directory
// services, such as LDAP or UDDI") and client-side image scaling tests
// (the Zaurus' 640x480 display showing 200x200 frames, §5.1).
#include <gtest/gtest.h>

#include "render/framebuffer.hpp"
#include "services/ldap.hpp"

namespace rave {
namespace {

using services::LdapDirectory;
using services::LdapScope;

TEST(Ldap, AddLookupRemove) {
  LdapDirectory dir;
  ASSERT_TRUE(dir.add("o=tower,dc=rave", {{"o", {"tower"}}}).ok());
  ASSERT_TRUE(dir.add("ou=services,o=tower,dc=rave", {{"ou", {"services"}}}).ok());
  auto entry = dir.lookup("ou=services,o=tower,dc=rave");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first("ou"), "services");

  // Parent must exist; duplicates refused.
  EXPECT_FALSE(dir.add("cn=x,o=ghost,dc=rave", {}).ok());
  EXPECT_FALSE(dir.add("o=tower,dc=rave", {}).ok());

  ASSERT_TRUE(dir.remove("o=tower,dc=rave").ok());
  EXPECT_FALSE(dir.lookup("o=tower,dc=rave").has_value());
  EXPECT_FALSE(dir.lookup("ou=services,o=tower,dc=rave").has_value());  // subtree gone
  EXPECT_FALSE(dir.remove("dc=rave").ok());  // suffix protected
}

TEST(Ldap, DnNormalization) {
  LdapDirectory dir;
  ASSERT_TRUE(dir.add("O=Tower, dc=rave", {{"o", {"Tower"}}}).ok());
  // Attribute types are case-insensitive, cosmetic spaces ignored.
  EXPECT_TRUE(dir.lookup("o=Tower,dc=rave").has_value());
}

TEST(Ldap, ScopedSearch) {
  LdapDirectory dir;
  ASSERT_TRUE(dir.add("o=a,dc=rave", {}).ok());
  ASSERT_TRUE(dir.add("ou=svc,o=a,dc=rave", {}).ok());
  ASSERT_TRUE(dir.add("cn=one,ou=svc,o=a,dc=rave", {{"cn", {"one"}}}).ok());
  ASSERT_TRUE(dir.add("o=b,dc=rave", {}).ok());

  EXPECT_EQ(dir.search("dc=rave", LdapScope::Base).size(), 1u);
  EXPECT_EQ(dir.search("dc=rave", LdapScope::OneLevel).size(), 2u);  // o=a, o=b
  EXPECT_EQ(dir.search("dc=rave", LdapScope::Subtree).size(), 5u);   // everything
  EXPECT_EQ(dir.search("o=a,dc=rave", LdapScope::Subtree).size(), 3u);
  EXPECT_TRUE(dir.search("o=ghost,dc=rave", LdapScope::Subtree).empty());
}

TEST(Ldap, WildcardFilters) {
  EXPECT_TRUE(LdapDirectory::wildcard_match("*", "anything"));
  EXPECT_TRUE(LdapDirectory::wildcard_match("Rave*Service", "RaveRenderService"));
  EXPECT_TRUE(LdapDirectory::wildcard_match("*render*", "rave-render-1"));
  EXPECT_FALSE(LdapDirectory::wildcard_match("Rave*Service", "RaveRenderServices"));
  EXPECT_FALSE(LdapDirectory::wildcard_match("abc", "abd"));
  EXPECT_TRUE(LdapDirectory::wildcard_match("", ""));

  LdapDirectory dir;
  ASSERT_TRUE(dir.add("o=a,dc=rave", {}).ok());
  ASSERT_TRUE(dir.add("cn=render1,o=a,dc=rave",
                      {{"objectClass", {"RaveRenderService"}}}).ok());
  ASSERT_TRUE(dir.add("cn=data1,o=a,dc=rave", {{"objectClass", {"RaveDataService"}}}).ok());
  const auto renders =
      dir.search("dc=rave", LdapScope::Subtree, "objectClass", "Rave*Service");
  ASSERT_EQ(renders.size(), 2u);
  const auto render_only =
      dir.search("dc=rave", LdapScope::Subtree, "objectClass", "*Render*");
  ASSERT_EQ(render_only.size(), 1u);
  EXPECT_EQ(render_only[0].first("objectClass"), "RaveRenderService");
}

TEST(Ldap, RaveAdapterAdvertiseAndDiscover) {
  LdapDirectory dir;
  ASSERT_TRUE(services::ldap_advertise(dir, "tower", "render:Skull", "inproc:tower/soap",
                                       "RaveRenderService", "Skull-internal")
                  .ok());
  ASSERT_TRUE(services::ldap_advertise(dir, "adrenochrome", "render:Skull",
                                       "inproc:adrenochrome/soap", "RaveRenderService")
                  .ok());
  ASSERT_TRUE(services::ldap_advertise(dir, "adrenochrome", "data:Skull",
                                       "inproc:adrenochrome/soap", "RaveDataService")
                  .ok());

  const auto renders = services::ldap_find_services(dir, "RaveRenderService");
  ASSERT_EQ(renders.size(), 2u);
  for (const auto& entry : renders)
    EXPECT_NE(entry.first("labeledURI").find("inproc:"), std::string::npos);
  EXPECT_EQ(services::ldap_find_services(dir, "RaveDataService").size(), 1u);

  // Re-advertising replaces, not duplicates.
  ASSERT_TRUE(services::ldap_advertise(dir, "tower", "render:Skull", "inproc:tower/soap2",
                                       "RaveRenderService")
                  .ok());
  const auto after = services::ldap_find_services(dir, "RaveRenderService");
  EXPECT_EQ(after.size(), 2u);
}

TEST(ImageScale, NearestPreservesBlocks) {
  render::Image small(2, 2);
  small.set_pixel(0, 0, 255, 0, 0);
  small.set_pixel(1, 0, 0, 255, 0);
  small.set_pixel(0, 1, 0, 0, 255);
  small.set_pixel(1, 1, 255, 255, 255);
  const render::Image big = render::scale_nearest(small, 8, 8);
  EXPECT_EQ(big.pixel(1, 1)[0], 255);  // top-left quadrant stays red
  EXPECT_EQ(big.pixel(6, 1)[1], 255);  // top-right green
  EXPECT_EQ(big.pixel(1, 6)[2], 255);  // bottom-left blue
  EXPECT_EQ(big.pixel(6, 6)[0], 255);  // bottom-right white
}

TEST(ImageScale, BilinearInterpolatesSmoothly) {
  render::Image small(2, 1);
  small.set_pixel(0, 0, 0, 0, 0);
  small.set_pixel(1, 0, 200, 200, 200);
  const render::Image big = render::scale_bilinear(small, 8, 1);
  // Monotone ramp between the two source pixels.
  for (int x = 1; x < 8; ++x) EXPECT_GE(big.pixel(x, 0)[0], big.pixel(x - 1, 0)[0]);
  EXPECT_LT(big.pixel(0, 0)[0], 20);
  EXPECT_GT(big.pixel(7, 0)[0], 180);
}

TEST(ImageScale, PdaUpscalePath) {
  // The Zaurus presentation path: 200x200 wire frame → 640x480 display.
  render::Image frame(200, 200);
  for (int y = 0; y < 200; ++y)
    for (int x = 0; x < 200; ++x)
      frame.set_pixel(x, y, static_cast<uint8_t>(x), static_cast<uint8_t>(y), 0);
  const render::Image display = render::scale_bilinear(frame, 640, 480);
  EXPECT_EQ(display.width, 640);
  EXPECT_EQ(display.height, 480);
  // Gradient direction preserved.
  EXPECT_LT(display.pixel(10, 240)[0], display.pixel(600, 240)[0]);
  EXPECT_LT(display.pixel(320, 10)[1], display.pixel(320, 460)[1]);
}

TEST(ImageScale, IdentityAndDegenerate) {
  render::Image src(3, 3);
  src.set_pixel(1, 1, 42, 43, 44);
  const render::Image same = render::scale_nearest(src, 3, 3);
  EXPECT_EQ(same.rgb, src.rgb);
  const render::Image empty = render::scale_bilinear(render::Image{}, 4, 4);
  EXPECT_EQ(empty.width, 4);  // defined result, no crash
}

}  // namespace
}  // namespace rave

// Generator, isosurface and decimation tests — the provenance pipeline for
// the paper's benchmark models (Table 1).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mesh/decimate.hpp"
#include "mesh/fields.hpp"
#include "mesh/generators.hpp"
#include "mesh/marching_cubes.hpp"
#include "mesh/primitives.hpp"

namespace rave::mesh {
namespace {

void expect_valid_mesh(const MeshData& mesh) {
  ASSERT_FALSE(mesh.positions.empty());
  ASSERT_FALSE(mesh.indices.empty());
  EXPECT_EQ(mesh.indices.size() % 3, 0u);
  for (uint32_t idx : mesh.indices) ASSERT_LT(idx, mesh.positions.size());
  EXPECT_EQ(mesh.normals.size(), mesh.positions.size());
}

TEST(Primitives, SphereTriangleCountFormula) {
  const int slices = 12, stacks = 9;
  const MeshData sphere = make_uv_sphere(1.0f, slices, stacks);
  expect_valid_mesh(sphere);
  EXPECT_EQ(sphere.triangle_count(), static_cast<size_t>(2 * slices * (stacks - 1)));
  // All vertices on the unit sphere.
  for (const auto& p : sphere.positions) EXPECT_NEAR(p.length(), 1.0f, 1e-4f);
}

TEST(Primitives, BoxIsClosedUnderSubdivision) {
  const MeshData box = make_box({1, 1, 1}, 3);
  expect_valid_mesh(box);
  EXPECT_EQ(box.triangle_count(), static_cast<size_t>(12 * 3 * 3));
  const scene::Aabb bounds = box.bounds();
  EXPECT_NEAR(bounds.lo.x, -1.0f, 1e-5f);
  EXPECT_NEAR(bounds.hi.z, 1.0f, 1e-5f);
}

TEST(Primitives, TorusIsWatertight) {
  const MeshData torus = make_torus(2.0f, 0.5f, 16, 12);
  expect_valid_mesh(torus);
  // Closed 2-manifold: every directed edge has exactly one opposite.
  std::map<std::pair<uint32_t, uint32_t>, int> edges;
  for (size_t i = 0; i + 2 < torus.indices.size(); i += 3) {
    const uint32_t v[3] = {torus.indices[i], torus.indices[i + 1], torus.indices[i + 2]};
    for (int e = 0; e < 3; ++e) edges[{v[e], v[(e + 1) % 3]}]++;
  }
  for (const auto& [edge, count] : edges) {
    EXPECT_EQ(count, 1);
    EXPECT_EQ(edges.count({edge.second, edge.first}), 1u);
  }
}

TEST(Primitives, TubeFollowsPath) {
  std::vector<scene::Vec3> path{{0, 0, 0}, {1, 0, 0}, {2, 1, 0}, {3, 1, 1}};
  const MeshData tube = make_tube(path, 0.1f, 8);
  expect_valid_mesh(tube);
  EXPECT_EQ(tube.triangle_count(), static_cast<size_t>(2 * 3 * 8));
  // All vertices within radius of the path's bounding box (loose check).
  scene::Aabb box;
  for (const auto& p : path) box.extend(p);
  box.lo -= scene::Vec3{0.2f, 0.2f, 0.2f};
  box.hi += scene::Vec3{0.2f, 0.2f, 0.2f};
  for (const auto& p : tube.positions) EXPECT_TRUE(box.contains(p));
}

TEST(Primitives, AppendMeshTransformsAndOffsets) {
  MeshData base = make_cone(1.0f, 2.0f, 8);
  const size_t base_verts = base.positions.size();
  const MeshData extra = make_cone(1.0f, 2.0f, 8);
  append_mesh(base, extra, util::Mat4::translate({10, 0, 0}));
  EXPECT_EQ(base.positions.size(), 2 * base_verts);
  for (uint32_t idx : base.indices) ASSERT_LT(idx, base.positions.size());
  EXPECT_GT(base.bounds().hi.x, 9.0f);
}

struct TargetCase {
  const char* name;
  size_t target;
  double tolerance;
};

class GeneratorTargetTest : public testing::TestWithParam<TargetCase> {};

TEST_P(GeneratorTargetTest, HitsTriangleBudget) {
  const TargetCase& tc = GetParam();
  const MeshData mesh = make_model(tc.name, tc.target);
  expect_valid_mesh(mesh);
  const double ratio =
      static_cast<double>(mesh.triangle_count()) / static_cast<double>(tc.target);
  EXPECT_GT(ratio, 1.0 - tc.tolerance) << mesh.triangle_count();
  EXPECT_LT(ratio, 1.0 + tc.tolerance) << mesh.triangle_count();
  // Normalized to the unit cube for predictable camera framing.
  const scene::Aabb bounds = mesh.bounds();
  EXPECT_LE(bounds.extent().x, 2.01f);
  EXPECT_LE(bounds.extent().y, 2.01f);
}

INSTANTIATE_TEST_SUITE_P(Models, GeneratorTargetTest,
                         testing::Values(TargetCase{"Skeletal Hand", 40'000, 0.25},
                                         TargetCase{"Skeleton", 60'000, 0.25},
                                         TargetCase{"Galleon", 5'500, 0.35},
                                         TargetCase{"Elle", 25'000, 0.25}),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name)
                             if (c == ' ') c = '_';
                           return name;
                         });

TEST(Generators, CatalogMatchesPaperTable1) {
  const auto& catalog = model_catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].name, "Skeletal Hand");
  EXPECT_EQ(catalog[0].paper_triangles, 830'000u);
  EXPECT_EQ(catalog[1].name, "Skeleton");
  EXPECT_EQ(catalog[1].paper_triangles, 2'800'000u);
}

TEST(Fields, BallFieldFallsOffWithDistance) {
  const ScalarField field = ball_field({0, 0, 0}, 2.0f);
  EXPECT_NEAR(field({0, 0, 0}), 1.0f, 1e-5f);
  EXPECT_GT(field({1, 0, 0}), field({1.5f, 0, 0}));
  EXPECT_FLOAT_EQ(field({3, 0, 0}), 0.0f);
}

TEST(Fields, UnionTakesMaximum) {
  const ScalarField field =
      union_field({ball_field({0, 0, 0}, 1.0f), ball_field({2, 0, 0}, 1.0f)});
  EXPECT_NEAR(field({2, 0, 0}), 1.0f, 1e-5f);
  EXPECT_NEAR(field({0, 0, 0}), 1.0f, 1e-5f);
}

TEST(Isosurface, SphereFieldProducesSphericalMesh) {
  scene::Aabb bounds;
  bounds.extend({-2, -2, -2});
  bounds.extend({2, 2, 2});
  const auto grid = rasterize_field(ball_field({0, 0, 0}, 2.0f), bounds, 32, 32, 32);
  const MeshData mesh = extract_isosurface(grid, {.iso_value = 0.5f});
  expect_valid_mesh(mesh);
  // iso=0.5 of a linear falloff with radius 2 is the r=1 sphere.
  for (const auto& p : mesh.positions) EXPECT_NEAR(p.length(), 1.0f, 0.15f);
}

TEST(Isosurface, OutputIsWatertight) {
  scene::Aabb bounds;
  bounds.extend({-1.5f, -1.5f, -1.5f});
  bounds.extend({1.5f, 1.5f, 1.5f});
  const auto grid = rasterize_field(ball_field({0, 0, 0}, 1.2f), bounds, 24, 24, 24);
  const MeshData mesh = extract_isosurface(grid, {.iso_value = 0.5f});
  // Watertightness: every edge appears exactly twice (once per direction).
  std::map<std::pair<uint32_t, uint32_t>, int> edges;
  for (size_t i = 0; i + 2 < mesh.indices.size(); i += 3) {
    const uint32_t v[3] = {mesh.indices[i], mesh.indices[i + 1], mesh.indices[i + 2]};
    for (int e = 0; e < 3; ++e) {
      const uint32_t a = v[e], b = v[(e + 1) % 3];
      edges[{std::min(a, b), std::max(a, b)}]++;
    }
  }
  for (const auto& [edge, count] : edges) EXPECT_EQ(count, 2) << edge.first << "-" << edge.second;
}

TEST(Isosurface, NormalsPointOutwards) {
  scene::Aabb bounds;
  bounds.extend({-2, -2, -2});
  bounds.extend({2, 2, 2});
  const auto grid = rasterize_field(ball_field({0, 0, 0}, 2.0f), bounds, 24, 24, 24);
  const MeshData mesh = extract_isosurface(grid, {.iso_value = 0.5f});
  size_t outward = 0;
  for (size_t i = 0; i < mesh.positions.size(); ++i)
    if (util::dot(mesh.normals[i], util::normalize(mesh.positions[i])) > 0) ++outward;
  // Virtually all normals should face away from the ball center.
  EXPECT_GT(static_cast<double>(outward) / mesh.positions.size(), 0.95);
}

TEST(Decimate, ReducesTriangleCountAndKeepsShape) {
  const MeshData dense = make_uv_sphere(1.0f, 48, 32);
  const MeshData coarse = decimate_clustering(dense, {.grid_resolution = 8});
  expect_valid_mesh(coarse);
  EXPECT_LT(coarse.triangle_count(), dense.triangle_count() / 4);
  for (const auto& p : coarse.positions) EXPECT_NEAR(p.length(), 1.0f, 0.2f);
}

TEST(Decimate, ToTargetMeetsBudget) {
  const MeshData dense = make_uv_sphere(1.0f, 64, 48);
  const MeshData out = decimate_to_target(dense, 500);
  EXPECT_LE(out.triangle_count(), 500u);
  EXPECT_GT(out.triangle_count(), 20u);
}

TEST(Decimate, WeldMergesCoincidentVertices) {
  MeshData two_tris;
  two_tris.positions = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
  two_tris.indices = {0, 1, 2, 3, 5, 4};
  two_tris.compute_normals();
  const MeshData welded = weld_vertices(two_tris, 1e-5f);
  EXPECT_EQ(welded.positions.size(), 4u);
  EXPECT_EQ(welded.triangle_count(), 2u);
}

TEST(Provenance, SkeletonFromVolumePipeline) {
  // marching cubes + decimation, as the paper's skeleton model was made.
  const MeshData skeleton = make_skeleton_from_volume(40, 20'000);
  expect_valid_mesh(skeleton);
  EXPECT_LE(skeleton.triangle_count(), 20'000u);
  EXPECT_GT(skeleton.triangle_count(), 1'000u);
}

}  // namespace
}  // namespace rave::mesh

// OBJ/PLY I/O tests — the data-import path of the data service (paper §5:
// models in PLY, converted to OBJ, imported).
#include <gtest/gtest.h>

#include <sstream>

#include "mesh/obj_io.hpp"
#include "mesh/ply_io.hpp"
#include "mesh/primitives.hpp"

namespace rave::mesh {
namespace {

TEST(ObjIo, RoundTripPreservesGeometry) {
  const MeshData mesh = make_uv_sphere(1.0f, 12, 8);
  std::ostringstream out;
  ASSERT_TRUE(write_obj(mesh, out).ok());
  std::istringstream in(out.str());
  auto back = read_obj(in);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().positions.size(), mesh.positions.size());
  EXPECT_EQ(back.value().triangle_count(), mesh.triangle_count());
  for (size_t i = 0; i < mesh.positions.size(); i += 7) {
    EXPECT_NEAR(back.value().positions[i].x, mesh.positions[i].x, 1e-4f);
    EXPECT_NEAR(back.value().positions[i].y, mesh.positions[i].y, 1e-4f);
  }
}

TEST(ObjIo, ParsesFaceVariantsAndPolygons) {
  const std::string obj =
      "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n"
      "f 1 2 3 4\n"      // quad → fan triangulated
      "f 1/5 2/6 3/7\n"  // with texture indices
      "f -4//-4 -3//-3 -2//-2\n";  // negative indices
  std::istringstream in(obj);
  auto mesh = read_obj(in);
  ASSERT_TRUE(mesh.ok()) << mesh.error();
  EXPECT_EQ(mesh.value().positions.size(), 4u);
  EXPECT_EQ(mesh.value().triangle_count(), 4u);  // 2 + 1 + 1
}

TEST(ObjIo, RejectsMalformedInput) {
  std::istringstream bad_vertex("v 1 2\nf 1 2 3\n");
  EXPECT_FALSE(read_obj(bad_vertex).ok());
  std::istringstream bad_index("v 0 0 0\nf 1 2 9\n");
  EXPECT_FALSE(read_obj(bad_index).ok());
  std::istringstream degenerate_face("v 0 0 0\nv 1 0 0\nf 1 2\n");
  EXPECT_FALSE(read_obj(degenerate_face).ok());
}

TEST(ObjIo, FileSizeEstimateMatchesActual) {
  const MeshData mesh = make_uv_sphere(1.0f, 16, 12);
  std::ostringstream out;
  ASSERT_TRUE(write_obj(mesh, out).ok());
  EXPECT_EQ(obj_file_size(mesh), out.str().size());
}

class PlyFormatTest : public testing::TestWithParam<PlyFormat> {};

TEST_P(PlyFormatTest, RoundTrip) {
  const MeshData mesh = make_torus(2.0f, 0.5f, 10, 8);
  std::stringstream stream;
  ASSERT_TRUE(write_ply(mesh, stream, GetParam()).ok());
  auto back = read_ply(stream);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().positions.size(), mesh.positions.size());
  EXPECT_EQ(back.value().triangle_count(), mesh.triangle_count());
  for (size_t i = 0; i < mesh.positions.size(); i += 13) {
    EXPECT_NEAR(back.value().positions[i].x, mesh.positions[i].x, 1e-5f);
    EXPECT_NEAR(back.value().positions[i].z, mesh.positions[i].z, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, PlyFormatTest,
                         testing::Values(PlyFormat::Ascii, PlyFormat::BinaryLittleEndian));

TEST(PlyIo, RejectsNonPly) {
  std::istringstream in("OFF\n3 1 0\n");
  EXPECT_FALSE(read_ply(in).ok());
}

TEST(PlyIo, RejectsOutOfRangeFaceIndex) {
  std::istringstream in(
      "ply\nformat ascii 1.0\nelement vertex 3\nproperty float x\nproperty float y\n"
      "property float z\nelement face 1\nproperty list uchar uint vertex_indices\n"
      "end_header\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n");
  EXPECT_FALSE(read_ply(in).ok());
}

TEST(PlyIo, PaperPipelinePlyToObj) {
  // The paper's import path: PLY (archive format) → OBJ → data service.
  const MeshData original = make_capsule(0.5f, 2.0f, 10, 4);
  std::stringstream ply_stream;
  ASSERT_TRUE(write_ply(original, ply_stream, PlyFormat::BinaryLittleEndian).ok());
  auto from_ply = read_ply(ply_stream);
  ASSERT_TRUE(from_ply.ok());
  std::stringstream obj_stream;
  ASSERT_TRUE(write_obj(from_ply.value(), obj_stream).ok());
  auto from_obj = read_obj(obj_stream);
  ASSERT_TRUE(from_obj.ok());
  EXPECT_EQ(from_obj.value().triangle_count(), original.triangle_count());
}

}  // namespace
}  // namespace rave::mesh

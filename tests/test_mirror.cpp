// Data-service mirroring tests (paper §6 fail-safe): a mirror converges
// with the primary, survives primary loss, and promotes into a standby
// that subscribers continue against. Plus paced session replay.
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "core/mirror.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

using scene::kRootNode;
using scene::SceneTree;

scene::MeshData ball() { return mesh::make_uv_sphere(0.7f, 12, 8); }

class MirrorFixture : public testing::Test {
 protected:
  MirrorFixture() : fabric_(clock_) {}

  std::unique_ptr<DataService> make_primary() {
    auto primary = std::make_unique<DataService>(clock_);
    primary_ap_ =
        fabric_
            .listen("primary/data",
                    [p = primary.get()](net::ChannelPtr ch) { p->accept(std::move(ch)); })
            .value();
    return primary;
  }

  util::SimClock clock_;
  InProcFabric fabric_;
  std::string primary_ap_;
};

TEST_F(MirrorFixture, ConvergesWithPrimary) {
  auto primary = make_primary();
  SceneTree tree;
  const scene::NodeId node = tree.add_child(kRootNode, "obj", ball());
  ASSERT_TRUE(primary->create_session("demo", std::move(tree)).ok());

  SessionMirror mirror(clock_, fabric_);
  ASSERT_TRUE(mirror.attach(primary_ap_, "demo").ok());
  for (int i = 0; i < 20 && !mirror.synced(); ++i) {
    primary->pump();
    mirror.pump();
  }
  ASSERT_TRUE(mirror.synced());
  EXPECT_EQ(mirror.tree()->node_count(), 2u);

  // A render service joins the primary and edits; the mirror follows.
  RenderService render(clock_, fabric_);
  ASSERT_TRUE(render.connect_session(primary_ap_, "demo").ok());
  for (int i = 0; i < 20; ++i) {
    primary->pump();
    render.pump();
    mirror.pump();
  }
  ASSERT_TRUE(render.bootstrapped("demo"));
  ASSERT_TRUE(render
                  .submit_update("demo", scene::SceneUpdate::set_transform(
                                             node, util::Mat4::translate({7, 0, 0})))
                  .ok());
  for (int i = 0; i < 20; ++i) {
    primary->pump();
    render.pump();
    mirror.pump();
  }
  EXPECT_EQ(mirror.updates_mirrored(), 1u);
  EXPECT_EQ(mirror.tree()->find(node)->transform.transform_point({0, 0, 0}),
            (util::Vec3{7, 0, 0}));
}

TEST_F(MirrorFixture, PromotionServesSubscribersAfterPrimaryLoss) {
  auto primary = make_primary();
  SceneTree tree;
  const scene::NodeId node = tree.add_child(kRootNode, "obj", ball());
  ASSERT_TRUE(primary->create_session("demo", std::move(tree)).ok());

  SessionMirror mirror(clock_, fabric_);
  ASSERT_TRUE(mirror.attach(primary_ap_, "demo").ok());
  RenderService editor(clock_, fabric_);
  ASSERT_TRUE(editor.connect_session(primary_ap_, "demo").ok());
  for (int i = 0; i < 20; ++i) {
    primary->pump();
    editor.pump();
    mirror.pump();
  }
  ASSERT_TRUE(editor
                  .submit_update("demo", scene::SceneUpdate::set_transform(
                                             node, util::Mat4::translate({1, 2, 3})))
                  .ok());
  for (int i = 0; i < 20; ++i) {
    primary->pump();
    editor.pump();
    mirror.pump();
  }
  ASSERT_EQ(mirror.updates_mirrored(), 1u);

  // Primary dies.
  primary.reset();
  fabric_.unlisten("primary/data");
  for (int i = 0; i < 5; ++i) mirror.pump();

  // Failover: promote into a standby data service at a new access point.
  DataService standby(clock_);
  ASSERT_TRUE(mirror.promote_into(standby).ok());
  const std::string standby_ap =
      fabric_
          .listen("standby/data",
                  [&standby](net::ChannelPtr ch) { standby.accept(std::move(ch)); })
          .value();

  // The standby serves the mirrored state, edits included.
  EXPECT_EQ(standby.session_tree("demo")->find(node)->transform.transform_point({0, 0, 0}),
            (util::Vec3{1, 2, 3}));

  // A client re-subscribes against the standby and keeps working.
  RenderService survivor(clock_, fabric_);
  ASSERT_TRUE(survivor.connect_session(standby_ap, "demo").ok());
  for (int i = 0; i < 20; ++i) {
    standby.pump();
    survivor.pump();
  }
  ASSERT_TRUE(survivor.bootstrapped("demo"));
  ASSERT_TRUE(survivor
                  .submit_update("demo", scene::SceneUpdate::set_name(node, "post-failover"))
                  .ok());
  for (int i = 0; i < 20; ++i) {
    standby.pump();
    survivor.pump();
  }
  EXPECT_EQ(standby.session_tree("demo")->find(node)->name, "post-failover");
}

TEST_F(MirrorFixture, PromoteBeforeSyncRefused) {
  SessionMirror mirror(clock_, fabric_);
  DataService standby(clock_);
  EXPECT_FALSE(mirror.promote_into(standby).ok());
}

TEST(PacedReplay, HonorsOriginalTimeline) {
  SceneTree tree;
  scene::AuditTrail trail(tree);
  for (int i = 0; i < 4; ++i) {
    scene::SceneNode node;
    node.id = static_cast<scene::NodeId>(10 + i);
    node.name = "n" + std::to_string(i);
    scene::SceneUpdate update = scene::SceneUpdate::add_node(kRootNode, std::move(node));
    update.timestamp = 100.0 + i * 2.0;  // updates 2 s apart
    trail.append(update);
  }
  util::SimClock clock(50.0);
  scene::SessionPlayer player(trail);
  std::vector<double> applied_at;
  const size_t applied = player.play_paced(clock, 2.0, [&](const scene::SceneUpdate&) {
    applied_at.push_back(clock.now());
  });
  EXPECT_EQ(applied, 4u);
  ASSERT_EQ(applied_at.size(), 4u);
  // 2 s gaps at 2x speed → 1 s apart, starting immediately.
  EXPECT_NEAR(applied_at[0], 50.0, 1e-9);
  EXPECT_NEAR(applied_at[1], 51.0, 1e-9);
  EXPECT_NEAR(applied_at[3], 53.0, 1e-9);
  EXPECT_EQ(player.tree().node_count(), 5u);
}

}  // namespace
}  // namespace rave::core

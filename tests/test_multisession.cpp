// Multi-session / multi-client sharing (paper §3.1.1-§3.1.2): "Multiple
// sessions may be managed by the same data service, sharing resources
// between users"; "Multiple render sessions are supported by each render
// service ... If multiple users view the same session, then a single copy
// of the data are stored in the render service"; plus the status
// interrogation surface over the whole deployment.
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "mesh/primitives.hpp"

namespace rave::core {
namespace {

using scene::kRootNode;
using scene::SceneTree;

SceneTree ball_scene(float radius) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(radius, 16, 12));
  return tree;
}

TEST(MultiSession, OneDataServiceManagesManySessions) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("alpha", ball_scene(0.5f)).ok());
  ASSERT_TRUE(data.create_session("beta", ball_scene(0.9f)).ok());
  EXPECT_EQ(data.session_names().size(), 2u);

  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "alpha").ok());
  ASSERT_TRUE(grid.join("laptop", "datahost", "beta").ok());

  RenderService& render = *grid.render_service("laptop");
  EXPECT_EQ(render.session_names().size(), 2u);
  EXPECT_TRUE(render.bootstrapped("alpha"));
  EXPECT_TRUE(render.bootstrapped("beta"));
  // Sessions are isolated: an edit in alpha does not leak into beta.
  const scene::NodeId alpha_ball = render.replica("alpha")->find_by_name("ball");
  ASSERT_TRUE(render
                  .submit_update("alpha", scene::SceneUpdate::set_transform(
                                              alpha_ball, util::Mat4::translate({9, 0, 0})))
                  .ok());
  grid.pump_until_idle();
  EXPECT_EQ(data.session_tree("alpha")
                ->find(alpha_ball)
                ->transform.transform_point({0, 0, 0})
                .x,
            9.0f);
  EXPECT_EQ(data.session_tree("beta")
                ->find(data.session_tree("beta")->find_by_name("ball"))
                ->transform.transform_point({0, 0, 0})
                .x,
            0.0f);
}

TEST(MultiSession, ManyClientsShareOneReplica) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("shared", ball_scene(0.6f)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "shared").ok());

  // Three thin clients on the same render service: one data subscription,
  // one scene copy, three private viewpoints.
  std::vector<std::unique_ptr<ThinClient>> clients;
  const auto pump = [&grid] { grid.pump_all(); };
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<ThinClient>(clock, grid.fabric()));
    ASSERT_TRUE(clients.back()
                    ->connect(grid.render_service("laptop")->client_access_point(), "shared")
                    .ok());
  }
  EXPECT_EQ(data.subscribers("shared").size(), 1u);  // one replica serves all

  for (int i = 0; i < 3; ++i) {
    scene::Camera cam;
    cam.eye = {static_cast<float>(i) - 1.0f, 0.5f, 3.0f};  // private viewpoint
    auto frame = clients[static_cast<size_t>(i)]->request_frame(cam, 80, 80, 5.0, pump);
    ASSERT_TRUE(frame.ok()) << frame.error();
  }
  EXPECT_GE(grid.render_service("laptop")->stats().frames_rendered, 3u);
}

TEST(MultiSession, StatusDashboardCoversFleet) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  ASSERT_TRUE(data.create_session("demo", ball_scene(0.5f)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
  scene::Camera cam;
  cam.eye = {0, 0, 3};
  (void)grid.render_service("laptop")->render_console("demo", cam, 32, 32);

  const auto statuses = grid.collect_status();
  ASSERT_EQ(statuses.size(), 2u);
  const auto* data_host = &statuses[0];
  const auto* render_host = &statuses[1];
  if (!data_host->has_data_service) std::swap(data_host, render_host);
  ASSERT_TRUE(data_host->has_data_service);
  ASSERT_EQ(data_host->sessions.size(), 1u);
  EXPECT_EQ(data_host->sessions[0].name, "demo");
  EXPECT_EQ(data_host->sessions[0].subscribers, 1u);
  ASSERT_TRUE(render_host->has_render_service);
  ASSERT_EQ(render_host->renders.size(), 1u);
  EXPECT_GE(render_host->renders[0].frames_rendered, 1u);

  const std::string dashboard = grid.status_dashboard();
  EXPECT_NE(dashboard.find("session 'demo'"), std::string::npos);
  EXPECT_NE(dashboard.find("laptop"), std::string::npos);
  EXPECT_NE(dashboard.find("frames"), std::string::npos);
}

TEST(MultiSession, StatusRoundTripsThroughSoapValue) {
  HostStatus status;
  status.host = "h";
  status.has_data_service = true;
  SessionStatus session;
  session.name = "s";
  session.nodes = 5;
  session.triangles = 1000;
  session.subscribers = 2;
  status.sessions.push_back(session);
  // parse(format) consistency is covered by the fixture; here check the
  // formatter includes the load-bearing numbers.
  const std::string text = format_dashboard({status});
  EXPECT_NE(text.find("'s'"), std::string::npos);
  EXPECT_NE(text.find("1000 triangles"), std::string::npos);
  EXPECT_NE(text.find("2 subscriber"), std::string::npos);
}

}  // namespace
}  // namespace rave::core

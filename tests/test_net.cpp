// Network substrate tests: in-process channels, TCP, simulated links,
// fan-out distribution.
#include <gtest/gtest.h>

#include <thread>

#include "net/channel.hpp"
#include "net/fanout.hpp"
#include "net/simlink.hpp"
#include "net/tcp.hpp"
#include "util/clock.hpp"

namespace rave::net {
namespace {

TEST(InProcChannel, SendReceive) {
  auto [a, b] = make_channel_pair();
  ASSERT_TRUE(a->send({7, {1, 2, 3}}).ok());
  auto msg = b->try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 7);
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(b->try_receive().has_value());
}

TEST(InProcChannel, Bidirectional) {
  auto [a, b] = make_channel_pair();
  ASSERT_TRUE(a->send({1, {}}).ok());
  ASSERT_TRUE(b->send({2, {}}).ok());
  EXPECT_EQ(a->try_receive()->type, 2);
  EXPECT_EQ(b->try_receive()->type, 1);
}

TEST(InProcChannel, CloseUnblocksAndRefusesSend) {
  auto [a, b] = make_channel_pair();
  a->close();
  EXPECT_FALSE(a->send({1, {}}).ok());
  EXPECT_FALSE(b->receive(0.05).has_value());
}

TEST(InProcChannel, BlockingReceiveWaitsForSender) {
  auto [a, b] = make_channel_pair();
  std::thread sender([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)a->send({42, {}});
  });
  auto msg = b->receive(1.0);
  sender.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 42);
}

TEST(InProcChannel, StatsCountTraffic) {
  auto [a, b] = make_channel_pair();
  (void)a->send({1, std::vector<uint8_t>(10)});
  (void)b->try_receive();
  EXPECT_EQ(a->stats().messages_sent, 1u);
  EXPECT_EQ(a->stats().bytes_sent, 16u);  // 6-byte frame + payload
  EXPECT_EQ(b->stats().messages_received, 1u);
}

TEST(Tcp, ConnectSendReceive) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok()) << listener.error();
  auto client = tcp_connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.ok()) << client.error();
  auto server = listener.value()->accept(1.0);
  ASSERT_TRUE(server.has_value());

  std::vector<uint8_t> payload(1000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<uint8_t>(i * 7);
  ASSERT_TRUE(client.value()->send({0x0111, payload}).ok());
  auto msg = (*server)->receive(1.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 0x0111);
  EXPECT_EQ(msg->payload, payload);

  // And back.
  ASSERT_TRUE((*server)->send({0x0112, {9}}).ok());
  auto reply = client.value()->receive(1.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload[0], 9);
}

TEST(Message, WireSizeAccountsForOptionalHeaders) {
  Message plain(0x42, {1, 2, 3});
  EXPECT_EQ(plain.wire_size(), 6u + 3u);  // length + type + payload

  Message traced = plain;
  traced.trace_id = 7;
  traced.span_id = 9;
  EXPECT_EQ(traced.wire_size(), 6u + 16u + 3u);  // + trace context

  Message stamped = plain;
  stamped.hlc_wall = 1'000'000;
  stamped.hlc_logical = 2;
  EXPECT_EQ(stamped.wire_size(), 6u + 12u + 3u);  // + HLC stamp

  Message both = traced;
  both.hlc_wall = 1'000'000;
  both.hlc_logical = 2;
  EXPECT_EQ(both.wire_size(), 6u + 16u + 12u + 3u);
}

TEST(Tcp, HlcStampRoundTripsAndUnstampedStaysClean) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok()) << listener.error();
  auto client = tcp_connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.ok()) << client.error();
  auto server = listener.value()->accept(1.0);
  ASSERT_TRUE(server.has_value());

  Message stamped(0x0123, {5, 6, 7});
  stamped.hlc_wall = 0x0102030405060708ull;
  stamped.hlc_logical = 42;
  ASSERT_TRUE(client.value()->send(stamped).ok());
  auto msg = (*server)->receive(1.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, 0x0123);  // the 0x4000 flag bit never leaks upward
  EXPECT_EQ(msg->hlc_wall, 0x0102030405060708ull);
  EXPECT_EQ(msg->hlc_logical, 42u);
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{5, 6, 7}));

  // Unstamped traffic arrives with a zero stamp (pre-HLC wire format).
  ASSERT_TRUE((*server)->send({0x0124, {9}}).ok());
  auto reply = client.value()->receive(1.0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->hlc_wall, 0u);
  EXPECT_EQ(reply->hlc_logical, 0u);
  EXPECT_FALSE(reply->hlc_stamped());
}

TEST(Tcp, ReceiveTimesOutWithoutData) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = tcp_connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.ok());
  auto server = listener.value()->accept(1.0);
  ASSERT_TRUE(server.has_value());
  EXPECT_FALSE(client.value()->receive(0.05).has_value());
}

TEST(Tcp, ConnectToClosedPortFails) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener.value()->port();
  listener.value()->close();
  EXPECT_FALSE(tcp_connect("127.0.0.1", port).ok());
}

TEST(LinkProfile, TransmitArithmetic) {
  LinkProfile link;
  link.bandwidth_bps = 8e6;  // 1 MB/s
  link.efficiency = 1.0;
  link.latency_s = 0.01;
  EXPECT_NEAR(link.transmit_seconds(1'000'000), 1.0, 1e-9);
  EXPECT_NEAR(link.delivery_seconds(500'000), 0.51, 1e-9);
  LinkProfile infinite;
  EXPECT_DOUBLE_EQ(infinite.delivery_seconds(1'000'000), 0.0);
}

TEST(LinkProfile, PaperWirelessMatchesMeasuredReceipt) {
  // Paper §5.1: 200x200x24bpp (120 KB) over 11 Mbit/s wireless took
  // ~0.2 s — "a bandwidth of around 580Kb/sec".
  const LinkProfile link = wireless_11mbit();
  const double t = link.delivery_seconds(200 * 200 * 3);
  EXPECT_GT(t, 0.15);
  EXPECT_LT(t, 0.28);
}

TEST(SimulatedLink, DelaysDeliveryOnVirtualClock) {
  util::SimClock clock;
  LinkProfile link;
  link.bandwidth_bps = 8e6;
  link.latency_s = 0.5;
  auto [a, b] = make_simulated_pair(clock, link);
  ASSERT_TRUE(a->send({1, std::vector<uint8_t>(100'000)}).ok());
  EXPECT_FALSE(b->try_receive().has_value());  // not yet arrived
  auto msg = b->receive(2.0);                  // auto-advances virtual time
  ASSERT_TRUE(msg.has_value());
  // ~0.1 s serialization + 0.5 s latency.
  EXPECT_NEAR(clock.now(), 0.6, 0.05);
}

TEST(SimulatedLink, SerializesBackToBackMessages) {
  util::SimClock clock;
  LinkProfile link;
  link.bandwidth_bps = 8e6;
  auto [a, b] = make_simulated_pair(clock, link);
  ASSERT_TRUE(a->send({1, std::vector<uint8_t>(1'000'000)}).ok());
  ASSERT_TRUE(a->send({2, std::vector<uint8_t>(1'000'000)}).ok());
  ASSERT_TRUE(b->receive(10.0).has_value());
  ASSERT_TRUE(b->receive(10.0).has_value());
  // Two 1 MB messages over 1 MB/s share the pipe: ~2 s total.
  EXPECT_NEAR(clock.now(), 2.0, 0.1);
}

TEST(SimulatedLink, TimeoutRespected) {
  util::SimClock clock;
  LinkProfile link;
  link.bandwidth_bps = 1e3;  // very slow
  auto [a, b] = make_simulated_pair(clock, link);
  ASSERT_TRUE(a->send({1, std::vector<uint8_t>(100'000)}).ok());
  EXPECT_FALSE(b->receive(0.5).has_value());  // arrival far beyond timeout
  EXPECT_LE(clock.now(), 0.6);
}

TEST(Fanout, PublishReachesAllSubscribers) {
  FanoutHub hub;
  auto [a1, a2] = make_channel_pair();
  auto [b1, b2] = make_channel_pair();
  hub.subscribe(a1);
  hub.subscribe(b1);
  EXPECT_EQ(hub.publish({5, {1}}), 2u);
  EXPECT_TRUE(a2->try_receive().has_value());
  EXPECT_TRUE(b2->try_receive().has_value());
}

TEST(Fanout, FilterSkipsUninterested) {
  FanoutHub hub;
  auto [a1, a2] = make_channel_pair();
  auto [b1, b2] = make_channel_pair();
  hub.subscribe(a1, [](const Message& m) { return m.type == 1; });
  hub.subscribe(b1);
  EXPECT_EQ(hub.publish({2, {}}), 1u);
  EXPECT_FALSE(a2->try_receive().has_value());
  EXPECT_TRUE(b2->try_receive().has_value());
}

TEST(Fanout, MulticastAccountingCountsPayloadOnce) {
  FanoutHub hub;
  auto [a1, a2] = make_channel_pair();
  auto [b1, b2] = make_channel_pair();
  auto [c1, c2] = make_channel_pair();
  hub.subscribe(a1);
  hub.subscribe(b1);
  hub.subscribe(c1);
  const Message msg{1, std::vector<uint8_t>(100)};
  hub.publish(msg);
  EXPECT_EQ(hub.multicast_bytes(), msg.wire_size());
  EXPECT_EQ(hub.unicast_bytes(), 3 * msg.wire_size());
}

TEST(Fanout, UnsubscribeStopsDelivery) {
  FanoutHub hub;
  auto [a1, a2] = make_channel_pair();
  const auto id = hub.subscribe(a1);
  hub.unsubscribe(id);
  EXPECT_EQ(hub.publish({1, {}}), 0u);
  EXPECT_EQ(hub.subscriber_count(), 0u);
}

}  // namespace
}  // namespace rave::net

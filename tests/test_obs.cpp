// Observability subsystem tests: metrics registry semantics (including
// the concurrent-scrape property the sharded counters promise), trace
// stitching determinism under virtual time, the flight recorder ring, and
// the extended status endpoint round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <set>
#include <thread>

#include "core/frame_stream.hpp"
#include "core/grid.hpp"
#include "mesh/primitives.hpp"
#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace rave::obs {
namespace {

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  Counter counter;
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);

  Gauge gauge;
  gauge.set(3.5);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 4.0);

  Histogram histogram({0.01, 0.1, 1.0});
  histogram.observe(0.005);  // bucket le=0.01
  histogram.observe(0.05);   // bucket le=0.1
  histogram.observe(0.05);
  histogram.observe(5.0);  // +inf bucket
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.005 + 0.05 + 0.05 + 5.0);
  EXPECT_EQ(histogram.bucket_counts(), (std::vector<uint64_t>{1, 2, 0, 1}));
  // Rank 2 of 4 sits halfway through the le=0.1 bucket (one observation
  // below it): interpolated 0.01 + (2-1)/2 * (0.1-0.01) = 0.055.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.055);
  // The +inf bucket reports the largest finite bound, exactly as before.
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 1.0);
}

TEST(Metrics, QuantileInterpolatesWithinBucket) {
  Histogram histogram({1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) histogram.observe(1.5);  // all in le=2 bucket
  // Every rank falls in (1.0, 2.0]: the estimate must move smoothly with q
  // instead of reporting the bucket edge for all of them.
  const double p10 = histogram.quantile(0.10);
  const double p50 = histogram.quantile(0.50);
  const double p90 = histogram.quantile(0.90);
  EXPECT_GT(p10, 1.0);
  EXPECT_LT(p90, 2.0 + 1e-9);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p90);
  // First bucket interpolates from a lower edge of 0.
  Histogram first({10.0});
  first.observe(3.0);
  first.observe(3.0);
  EXPECT_GT(first.quantile(0.5), 0.0);
  EXPECT_LE(first.quantile(0.5), 10.0);
}

// Satellite property: a steady-state scrape loop must not grow memory —
// the scratch buffer and sample vector reach a high-water mark and then
// every further scrape reuses the same capacity.
TEST(Metrics, RepeatedScrapeIntoDoesNotGrowAllocations) {
  MetricsRegistry registry;
  registry.counter("rave_a_total", {{"k", "1"}}).inc(5);
  registry.gauge("rave_b_depth").set(2.5);
  registry.histogram("rave_c_seconds", {}, {0.1, 1.0}).observe(0.05);

  std::string scratch;
  registry.scrape_into(scratch);
  const std::string first = scratch;
  const size_t capacity = scratch.capacity();
  std::vector<MetricSample> samples;
  registry.samples_into(samples);
  const size_t vector_capacity = samples.capacity();

  for (int i = 0; i < 200; ++i) {
    registry.counter("rave_a_total", {{"k", "1"}}).inc();  // values move
    registry.scrape_into(scratch);
    EXPECT_EQ(scratch.capacity(), capacity) << "scrape buffer regrew at round " << i;
    registry.samples_into(samples);  // refills in place, no clear() needed
    EXPECT_EQ(samples.capacity(), vector_capacity) << "sample vector regrew at round " << i;
  }
  // Same registry state renders the same bytes through either entry point.
  registry.counter("rave_a_total", {{"k", "1"}}).inc(0);
  registry.scrape_into(scratch);
  EXPECT_EQ(scratch.substr(0, scratch.find("rave_a_total{")),
            first.substr(0, first.find("rave_a_total{")));
  EXPECT_EQ(registry.scrape(), scratch);
}

TEST(Metrics, RegistryReturnsStableRefsAndScrapes) {
  MetricsRegistry registry;
  Counter& a = registry.counter("rave_test_total", {{"kind", "x"}});
  Counter& b = registry.counter("rave_test_total", {{"kind", "x"}});
  EXPECT_EQ(&a, &b);  // same name+labels → same instrument
  Counter& c = registry.counter("rave_test_total", {{"kind", "y"}});
  EXPECT_NE(&a, &c);
  a.inc(7);
  c.inc(2);
  registry.gauge("rave_queue_depth").set(3);
  registry.histogram("rave_lat_seconds", {}, {0.1, 1.0}).observe(0.05);

  const std::string text = registry.scrape();
  EXPECT_NE(text.find("# TYPE rave_test_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("rave_test_total{kind=\"x\"} 7"), std::string::npos) << text;
  EXPECT_NE(text.find("rave_test_total{kind=\"y\"} 2"), std::string::npos) << text;
  EXPECT_NE(text.find("rave_queue_depth 3"), std::string::npos) << text;
  EXPECT_NE(text.find("rave_lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos) << text;
  EXPECT_NE(text.find("rave_lat_seconds_count 1"), std::string::npos) << text;
  // Scrape is deterministic: same registry state, same bytes.
  EXPECT_EQ(text, registry.scrape());
}

// Property: concurrent writers lose no counts, even while a reader is
// scraping the registry mid-storm (run under -DRAVE_SANITIZE=thread).
TEST(Metrics, ConcurrentWritersLoseNoCounts) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("rave_storm_total");
  Histogram& histogram = registry.histogram("rave_storm_seconds", {}, {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load()) (void)registry.scrape();
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(t % 2 == 0 ? 0.1 : 1.0);
      }
    });
  for (auto& w : writers) w.join();
  stop.store(true);
  scraper.join();

  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const auto buckets = histogram.bucket_counts();
  EXPECT_EQ(buckets[0] + buckets[1], static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, LogEventCountsAndRecords) {
  Counter& events = MetricsRegistry::global().counter(
      "rave_events_total", {{"component", "obstest"}, {"event", "boom"}});
  const uint64_t before = events.value();
  FlightRecorder::global().clear();
  log_event(util::LogLevel::Warn, "obstest", "boom", "something popped");
  EXPECT_EQ(events.value(), before + 1);
  // Warn-level events land in the flight ring as notes.
  EXPECT_NE(FlightRecorder::global().dump().find("something popped"), std::string::npos);
}

// --- tracing -----------------------------------------------------------------

TEST(Trace, SpansInactiveWhenDisabled) {
  Tracer::global().reset();
  Tracer::global().set_enabled(false);
  ScopedSpan root = ScopedSpan::root("frame", "host");
  EXPECT_FALSE(root.active());
  ScopedSpan child("shade", "host");
  EXPECT_FALSE(child.active());
  EXPECT_TRUE(Tracer::global().spans().empty());
}

TEST(Trace, ThreadLocalContextParentsNestedSpans) {
  Tracer::global().reset();
  Tracer::global().set_enabled(true);
  {
    ScopedSpan root = ScopedSpan::root("frame", "client");
    ASSERT_TRUE(root.active());
    {
      ScopedSpan shade("shade", "svc");
      ASSERT_TRUE(shade.active());
      EXPECT_EQ(shade.context().trace_id, root.context().trace_id);
    }
    {
      ScopedSpan raster("raster", "svc");
      ASSERT_TRUE(raster.active());
    }
  }
  Tracer::global().set_enabled(false);

  const auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 3u);
  uint64_t root_span = 0;
  for (const auto& s : spans)
    if (s.name == "frame") root_span = s.span_id;
  ASSERT_NE(root_span, 0u);
  for (const auto& s : spans)
    if (s.name != "frame") {
      EXPECT_EQ(s.parent_span_id, root_span) << s.name;
    }
}

TEST(Trace, StitchIsByteStableUnderVirtualTime) {
  const auto run = [] {
    util::SimClock clock;
    set_clock(&clock);
    Tracer::global().reset();
    Tracer::global().set_enabled(true);
    {
      ScopedSpan root = ScopedSpan::root("frame", "client");
      clock.advance(0.001);
      {
        ScopedSpan shade("shade", "svc");
        clock.advance(0.002);
      }
      {
        ScopedSpan raster("raster", "svc");
        clock.advance(0.003);
      }
    }
    Tracer::global().set_enabled(false);
    set_clock(nullptr);
    const auto spans = Tracer::global().spans();
    const auto ids = trace_ids(spans);
    return ids.size() == 1 ? stitch_trace(spans, ids[0]) : std::string{};
  };
  const std::string first = run();
  const std::string second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // reset clock + reset ids → identical bytes
  EXPECT_NE(first.find("frame"), std::string::npos) << first;
  EXPECT_NE(first.find("shade"), std::string::npos) << first;
  EXPECT_NE(first.find("raster"), std::string::npos) << first;
}

// --- flight recorder ----------------------------------------------------------

TEST(Trace, CriticalPathChargesSelfTimeAndNamesDominantHop) {
  // A three-hop delivery, hand-built: publisher (10ms wall) wraps a relay
  // hop (7ms) which wraps the subscriber decode (2ms). Self time is
  // duration minus children, so the relay — not the longest span — is the
  // dominant hop.
  const auto make = [](uint64_t span, uint64_t parent, const char* name, const char* host,
                       double start, double end) {
    SpanRecord record;
    record.trace_id = 1;
    record.span_id = span;
    record.parent_span_id = parent;
    record.name = name;
    record.host = host;
    record.start = start;
    record.end = end;
    return record;
  };
  const std::vector<SpanRecord> spans = {
      make(10, 0, "publish_frame", "xeon", 0.0, 0.010),
      make(11, 10, "relay", "edge", 0.002, 0.009),
      make(12, 11, "decode", "pda", 0.004, 0.006),
  };

  const CriticalPath path = critical_path(spans, 1);
  EXPECT_EQ(path.dominant, "relay@edge");
  EXPECT_DOUBLE_EQ(path.total_seconds, 0.010);
  ASSERT_EQ(path.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(path.hops[0].self_seconds, 0.005);  // relay: 7 − 2
  EXPECT_DOUBLE_EQ(path.hops[1].self_seconds, 0.003);  // publisher: 10 − 7
  EXPECT_DOUBLE_EQ(path.hops[2].self_seconds, 0.002);  // decode leaf

  EXPECT_EQ(format_critical_path(path),
            "critical path trace 1 · total 0.010000s · dominant relay@edge\n"
            "   0.005000s  relay @edge (1 span(s))\n"
            "   0.003000s  publish_frame @xeon (1 span(s))\n"
            "   0.002000s  decode @pda (1 span(s))\n");

  // An unknown trace yields an empty-but-printable path.
  const CriticalPath empty = critical_path(spans, 99);
  EXPECT_TRUE(empty.dominant.empty());
  EXPECT_NE(format_critical_path(empty).find("(none)"), std::string::npos);
}

// --- profiler ----------------------------------------------------------------

TEST(Profiler, InjectedTicksSampleSpanStacksDeterministically) {
  Profiler& profiler = Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);
  // Tracing stays OFF: the profiler rides the span annotations alone, so
  // production code needs no second set of instrument sites.
  Tracer::global().set_enabled(false);

  for (int rep = 0; rep < 2; ++rep) {
    ScopedSpan pump("pump", "svc");
    EXPECT_FALSE(pump.active());  // no trace in flight…
    EXPECT_EQ(profiler.tick(), 1u);  // …but the stack is live
    {
      ScopedSpan raster("raster", "svc");
      EXPECT_EQ(profiler.tick(), 1u);
    }
  }
  profiler.set_enabled(false);

  EXPECT_EQ(profiler.total_samples(), 4u);
  // Collapsed-stack export, sorted: ready for flamegraph.pl as-is.
  EXPECT_EQ(profiler.collapsed(), "pump 2\npump;raster 2\n");
  // Leaf attribution with a deterministic tie-break (samples desc, then
  // frame name): both leaves carry two samples each.
  const auto hot = profiler.hottest(2);
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].frame, "pump");
  EXPECT_EQ(hot[0].samples, 2u);
  EXPECT_EQ(hot[1].frame, "raster");
  EXPECT_EQ(hot[1].samples, 2u);

  profiler.reset();
  EXPECT_EQ(profiler.total_samples(), 0u);
  EXPECT_TRUE(profiler.collapsed().empty());
}

TEST(Profiler, TimerThreadSamplesWorkerStacks) {
  Profiler& profiler = Profiler::global();
  profiler.reset();
  profiler.set_enabled(true);

  std::atomic<bool> done{false};
  std::thread worker([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ScopedSpan span("worker_loop", "svc");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Production mode: a timer thread samples every registered thread's
  // stack. Poll until at least one sample lands (bounded wait).
  profiler.start(/*interval_seconds=*/0.0005);
  for (int i = 0; i < 2000 && profiler.total_samples() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  profiler.stop();
  done.store(true, std::memory_order_relaxed);
  worker.join();
  profiler.set_enabled(false);

  EXPECT_GT(profiler.total_samples(), 0u);
  EXPECT_NE(profiler.collapsed().find("worker_loop"), std::string::npos)
      << profiler.collapsed();
  profiler.reset();
}

// --- shed-induced staleness ---------------------------------------------------

// Frame-granular drop-oldest: buffers published stream messages per frame
// and releases them on command — the shed schedule a bounded reactor
// write queue produces under backpressure, made deterministic for virtual
// time. Forwarded messages keep their trace stamps, like any transport.
class FrameDropChannel final : public net::Channel {
 public:
  explicit FrameDropChannel(net::ChannelPtr inner) : inner_(std::move(inner)) {}

  util::Status send(net::Message message) override {
    if (message.type == core::kMsgFrameBegin || frames_.empty()) frames_.emplace_back();
    frames_.back().push_back(std::move(message));
    return {};
  }

  // Drop every buffered frame older than the newest (drop-oldest shed).
  size_t shed_older() {
    const size_t dropped = frames_.size() > 1 ? frames_.size() - 1 : 0;
    frames_.erase(frames_.begin(), frames_.begin() + static_cast<long>(dropped));
    return dropped;
  }

  // Release up to `n` queued messages of the oldest surviving frame.
  void forward(size_t n) {
    while (n-- > 0 && !frames_.empty()) {
      (void)inner_->send(std::move(frames_.front().front()));
      frames_.front().pop_front();
      if (frames_.front().empty()) frames_.erase(frames_.begin());
    }
  }
  void forward_all() {
    while (!frames_.empty()) forward(1);
  }

  [[nodiscard]] util::Result<net::Message> receive_result(double timeout_seconds) override {
    return inner_->receive_result(timeout_seconds);
  }
  void close() override { inner_->close(); }
  [[nodiscard]] bool is_open() const override { return inner_->is_open(); }
  [[nodiscard]] net::ChannelStats stats() const override { return inner_->stats(); }

 private:
  net::ChannelPtr inner_;
  std::deque<std::deque<net::Message>> frames_;
};

render::Image stream_image(int w, int h, int seed) {
  render::Image img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img.set_pixel(x, y, static_cast<uint8_t>((x * 7 + seed * 13) & 0xFF),
                    static_cast<uint8_t>((y * 11 + seed) & 0xFF),
                    static_cast<uint8_t>((x + y * 3 + seed * 5) & 0xFF));
  return img;
}

TEST(StreamStaleness, DropOldestShedYieldsByteStableAgeAndCriticalPath) {
  struct Run {
    double age = 0;
    uint64_t late = 0;
    std::string path;
    std::string postmortem;
  };
  const auto run = [] {
    util::SimClock clock;
    set_clock(&clock);
    Tracer::global().reset();
    Tracer::global().set_enabled(true);
    FlightRecorder::global().clear();

    core::FrameStreamOptions options;
    options.tile_size = 32;
    options.frame_deadline_seconds = 0.0625;
    core::FrameStreamPublisher publisher(options);
    auto [srv, cli] = net::make_channel_pair();
    auto shed = std::make_shared<FrameDropChannel>(srv);
    publisher.subscribe(shed, compress::QualityClass::Workstation);
    core::FrameStreamReceiver receiver(cli, compress::QualityClass::Workstation, options);

    // Frame 1 (t = 0) never leaves the stalled queue; frame 2 supersedes
    // it an eighth of a second later and then sits in transit. All the
    // advances are exact binary fractions, so the measured age is too.
    (void)publisher.publish_frame(stream_image(64, 32, 1));
    clock.advance(0.125);
    const auto report = publisher.publish_frame(stream_image(64, 32, 2));
    clock.advance(0.0625);
    EXPECT_EQ(shed->shed_older(), 1u);  // drop-oldest: frame 1 is gone

    int step = 0;
    const auto pump = [&] {
      if (step == 0) shed->forward(1);  // FrameBegin lands at t = 0.1875
      if (step == 1) {
        clock.advance(0.03125);  // the rest straggles in 31.25ms later
        shed->forward_all();
      }
      ++step;
    };
    auto frame = receiver.next_frame(clock, 1.0, pump);
    EXPECT_TRUE(frame.ok());

    Run out;
    out.age = MetricsRegistry::global()
                  .gauge("rave_stream_frame_age_seconds", {{"class", "workstation"}})
                  .value();
    out.late = receiver.stats().frames_late;
    out.path =
        format_critical_path(critical_path(Tracer::global().spans(), report.trace_id));
    out.postmortem = FlightRecorder::global().last_dump();
    Tracer::global().set_enabled(false);
    set_clock(nullptr);
    return out;
  };

  const Run first = run();
  const Run second = run();
  // Completion at 0.21875 minus publish at 0.125: the gauge attributes
  // exactly the shed-induced staleness, byte-for-byte across runs.
  EXPECT_EQ(first.age, 0.09375);
  EXPECT_EQ(second.age, first.age);
  EXPECT_EQ(first.path, second.path);
  // The straggling tiles dominate: all of the frame's self time sits in
  // the subscriber's assemble hop.
  EXPECT_NE(first.path.find("dominant assemble@subscriber"), std::string::npos) << first.path;
  // 0.09375s age > 0.0625s deadline → the late-frame post-mortem fired
  // and carries the per-hop breakdown.
  EXPECT_EQ(first.late, 1u);
  EXPECT_NE(first.postmortem.find("late frame 2 class workstation"), std::string::npos)
      << first.postmortem;
  EXPECT_NE(first.postmortem.find("critical path trace"), std::string::npos)
      << first.postmortem;
}

TEST(Flight, RingEvictsOldestAndCountsTotal) {
  FlightRecorder recorder;
  recorder.set_capacity(3);
  for (int i = 0; i < 5; ++i)
    recorder.record_note("test", "event " + std::to_string(i), static_cast<double>(i));
  EXPECT_EQ(recorder.event_count(), 3u);
  EXPECT_EQ(recorder.total_recorded(), 5u);
  const std::string dump = recorder.dump();
  EXPECT_EQ(dump.find("event 0"), std::string::npos);  // evicted
  EXPECT_EQ(dump.find("event 1"), std::string::npos);
  EXPECT_NE(dump.find("event 4"), std::string::npos);
}

TEST(Flight, FailureAutoCapturesPostmortem) {
  FlightRecorder recorder;
  EXPECT_TRUE(recorder.last_dump().empty());
  recorder.record_decision("data", "plan: move 3 nodes", 1.0);
  recorder.record_failure("render", "assistant pda lost", 2.0);
  const std::string dump = recorder.last_dump();
  // The snapshot taken at failure time already holds the decision context.
  EXPECT_NE(dump.find("post-mortem (failure: render: assistant pda lost)"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("DECIDE"), std::string::npos) << dump;
  EXPECT_NE(dump.find("plan: move 3 nodes"), std::string::npos) << dump;
  EXPECT_NE(dump.find("FAIL"), std::string::npos) << dump;

  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_TRUE(recorder.last_dump().empty());
}

TEST(Flight, ParseCapacityClampsAndFallsBack) {
  // RAVE_FLIGHT_EVENTS: bounds-clamped to [16, 65536]; anything that is
  // not a clean positive number falls back.
  EXPECT_EQ(parse_flight_capacity("1024", 512), 1024u);
  EXPECT_EQ(parse_flight_capacity(nullptr, 512), 512u);
  EXPECT_EQ(parse_flight_capacity("", 512), 512u);
  EXPECT_EQ(parse_flight_capacity("abc", 512), 512u);
  EXPECT_EQ(parse_flight_capacity("64junk", 512), 512u);
  EXPECT_EQ(parse_flight_capacity("-5", 512), 16u);  // clean parse, clamped
  EXPECT_EQ(parse_flight_capacity("8", 512), 16u);           // clamp up
  EXPECT_EQ(parse_flight_capacity("100000000", 512), 65536u);  // clamp down
}

TEST(Metrics, ScrapeEmitsHelpCommentsForKnownFamilies) {
  MetricsRegistry registry;
  registry.counter("rave_soap_calls_total", {{"host", "a"}}).inc(3);
  registry.counter("rave_soap_calls_total", {{"host", "b"}}).inc(1);
  registry.counter("rave_made_up_total").inc();

  const std::string text = registry.scrape();
  const size_t help = text.find("# HELP rave_soap_calls_total ");
  const size_t type = text.find("# TYPE rave_soap_calls_total counter");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos) << text;
  EXPECT_LT(help, type);  // Prometheus order: HELP, TYPE, samples
  // One HELP per family, not per labeled series.
  EXPECT_EQ(text.find("# HELP rave_soap_calls_total ", help + 1), std::string::npos);
  // Unknown families scrape fine, just without a HELP comment.
  EXPECT_EQ(text.find("# HELP rave_made_up_total"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE rave_made_up_total counter"), std::string::npos) << text;
}

TEST(Trace, CriticalPathOfUntracedFrameIsEmptyButPrintable) {
  // Tracing disabled → no spans at all. The analysis degrades to an
  // explicit "(none)", never a crash or a bogus hop.
  const CriticalPath path = critical_path({}, 0);
  EXPECT_TRUE(path.hops.empty());
  EXPECT_TRUE(path.dominant.empty());
  EXPECT_DOUBLE_EQ(path.total_seconds, 0.0);
  EXPECT_NE(format_critical_path(path).find("(none)"), std::string::npos);
}

TEST(Trace, CriticalPathChargesOrphanSpansFullDuration) {
  // A partially traced frame: the relay's span made it into the collector
  // but its publisher parent did not (sampled out, or the host died before
  // flushing). The orphan has no parent to absorb child time, so its full
  // duration counts as self time — the breakdown stays truthful about
  // what was observed instead of silently dropping the hop.
  const auto make = [](uint64_t span, uint64_t parent, const char* name, const char* host,
                       double start, double end) {
    SpanRecord record;
    record.trace_id = 5;
    record.span_id = span;
    record.parent_span_id = parent;
    record.name = name;
    record.host = host;
    record.start = start;
    record.end = end;
    return record;
  };
  const std::vector<SpanRecord> spans = {
      make(21, 99, "relay", "edge", 0.010, 0.018),  // parent 99 never recorded
      make(22, 21, "decode", "pda", 0.012, 0.015),
  };
  const CriticalPath path = critical_path(spans, 5);
  ASSERT_EQ(path.hops.size(), 2u);
  EXPECT_EQ(path.dominant, "relay@edge");
  EXPECT_DOUBLE_EQ(path.hops[0].self_seconds, 0.005);  // 8ms minus the decode child
  EXPECT_DOUBLE_EQ(path.hops[1].self_seconds, 0.003);  // orphan-rooted subtree intact
  EXPECT_DOUBLE_EQ(path.total_seconds, 0.008);         // last end − first start
}

}  // namespace
}  // namespace rave::obs

namespace rave::core {
namespace {

// --- status endpoint round-trip -----------------------------------------------

TEST(ObsStatus, ExtendedFamiliesRoundTripThroughSoap) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  scene::SceneTree tree;
  tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());

  ThinClient client(clock, grid.fabric());
  ASSERT_TRUE(
      client.connect(grid.render_service("laptop")->client_access_point(), "demo").ok());
  scene::Camera cam;
  cam.eye = {0, 0, 3};
  const auto pump = [&grid] { grid.pump_all(); };
  auto frame = client.request_frame(cam, 48, 48, 5.0, pump);
  ASSERT_TRUE(frame.ok()) << frame.error();

  const auto statuses = grid.collect_status();
  const HostStatus* render_host = nullptr;
  for (const HostStatus& status : statuses)
    if (status.has_render_service) render_host = &status;
  ASSERT_NE(render_host, nullptr);
  ASSERT_EQ(render_host->renders.size(), 1u);
  const RenderStatus& render = render_host->renders[0];
  EXPECT_GE(render.frames_rendered, 1u);
  // The new families survived the SOAP round-trip: a served frame must
  // have moved codec bytes and populated the latency histogram.
  EXPECT_GT(render.codec_bytes_in, 0u);
  EXPECT_GT(render.codec_bytes_out, 0u);
  EXPECT_GT(render.frame_p50_seconds, 0.0);
  EXPECT_GE(render.frame_p99_seconds, render.frame_p50_seconds);

  const std::string dashboard = format_dashboard(statuses);
  EXPECT_NE(dashboard.find("codec:"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("p50/p99"), std::string::npos) << dashboard;
}

TEST(ObsStatus, MetricsMethodServesScrape) {
  util::SimClock clock;
  RaveGrid grid(clock);
  grid.add_render_service("laptop");
  // Each test runs in its own process: seed the process-wide registry so
  // the scrape has something to expose.
  obs::MetricsRegistry::global().counter("rave_scrape_probe_total").inc();
  auto proxy = grid.soap_proxy("laptop", "status");
  ASSERT_TRUE(proxy.ok()) << proxy.error();
  grid.container("laptop")->start();
  auto scraped = proxy.value().call("metrics", {}, 2.0);
  grid.container("laptop")->stop();
  ASSERT_TRUE(scraped.ok()) << scraped.error();
  // The scrape includes families registered by earlier activity in this
  // process (the registry is process-wide); at minimum it is well-formed.
  EXPECT_NE(scraped.value().as_string().find("# TYPE"), std::string::npos);
}

TEST(ObsStatus, DashboardShowsFailureChurn) {
  HostStatus host;
  host.host = "datahost";
  host.has_data_service = true;
  host.lease_expiries = 2;
  host.recoveries = 1;
  RenderStatus render;
  render.host = "laptop";
  render.frames_rendered = 10;
  render.peer_failures = 1;
  render.tiles_redispatched = 3;
  render.delayed_queue_depth = 4;
  render.codec_bytes_in = 1000;
  render.codec_bytes_out = 400;
  HostStatus render_entry;
  render_entry.host = "laptop";
  render_entry.has_render_service = true;
  render_entry.renders.push_back(render);

  const std::string text = format_dashboard({host, render_entry});
  EXPECT_NE(text.find("2 lease expiries"), std::string::npos) << text;
  EXPECT_NE(text.find("1 recovery round(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("1 peer failure(s), 3 tile(s) re-dispatched"), std::string::npos) << text;
  EXPECT_NE(text.find("delayed sends queued: 4"), std::string::npos) << text;
  EXPECT_NE(text.find("1000 bytes in, 400 out (600 saved)"), std::string::npos) << text;
}

}  // namespace
}  // namespace rave::core

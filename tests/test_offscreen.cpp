// Off-screen pipeline tests: Java3D-style request/poll semantics and the
// sequential-vs-interleaved behaviour Tables 3/4 measure.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "render/offscreen.hpp"

namespace rave::render {
namespace {

FrameBuffer tiny_frame() {
  FrameBuffer fb(4, 4);
  fb.clear({0.5f, 0.5f, 0.5f});
  return fb;
}

TEST(Offscreen, CompletionOnlyVisibleAfterLatency) {
  OffscreenConfig config;
  config.completion_latency = 0.05;
  config.poll_interval = 0.002;
  OffscreenContext ctx(config);
  const auto id = ctx.submit([] { return tiny_frame(); });
  // Render is trivial; visibility is gated by the latency.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(ctx.is_complete(id));
  const FrameBuffer fb = ctx.wait(id);
  EXPECT_EQ(fb.width(), 4);
  EXPECT_TRUE(ctx.is_complete(id) == false);  // consumed
}

TEST(Offscreen, ResultsMatchSubmittedWork) {
  OffscreenContext ctx({.completion_latency = 0.001, .poll_interval = 0.0005});
  std::vector<OffscreenContext::JobId> ids;
  for (int i = 1; i <= 4; ++i)
    ids.push_back(ctx.submit([i] {
      FrameBuffer fb(i, i);
      return fb;
    }));
  for (int i = 1; i <= 4; ++i) {
    const FrameBuffer fb = ctx.wait(ids[static_cast<size_t>(i - 1)]);
    EXPECT_EQ(fb.width(), i);
  }
}

TEST(Offscreen, InterleavedBeatsSequential) {
  // The effect Table 4 reports: overlapping requests hides the completion
  // latency, sequential polling pays it per frame.
  OffscreenConfig config;
  config.completion_latency = 0.03;
  config.poll_interval = 0.001;
  OffscreenContext ctx(config);
  std::vector<OffscreenContext::RenderFn> jobs(4, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return tiny_frame();
  });
  const double seq = run_sequential(ctx, jobs);
  const double inter = run_interleaved(ctx, jobs);
  // Sequential: 4 * (render + latency) >= 0.14; interleaved: 4 * render +
  // one latency ~= 0.05. Generous margins for CI noise.
  EXPECT_GT(seq, inter * 1.5);
}

TEST(Offscreen, SequentialReturnsFramesInOrder) {
  OffscreenContext ctx({.completion_latency = 0.001, .poll_interval = 0.0005});
  std::vector<OffscreenContext::RenderFn> jobs;
  for (int i = 1; i <= 3; ++i)
    jobs.push_back([i] { return FrameBuffer(i, 1); });
  std::vector<FrameBuffer> results;
  run_sequential(ctx, jobs, &results);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].width(), 1);
  EXPECT_EQ(results[2].width(), 3);
}

}  // namespace
}  // namespace rave::render

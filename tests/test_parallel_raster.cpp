// Determinism of the tile-binned parallel rasterizer: with a pool the
// renderer must produce byte-identical color *and* depth planes to the
// serial path for every thread count, every payload kind, and partial
// regions — that bit-exactness is what makes the paper's distributed
// tile/subset compositing testable (DESIGN.md "Tile-binned parallel
// rasterization"). These tests carry the `tsan` ctest label so a
// -DRAVE_SANITIZE=thread build can run them instrumented.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "mesh/primitives.hpp"
#include "render/compositor.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera.hpp"
#include "util/thread_pool.hpp"

namespace rave::render {
namespace {

using mesh::make_box;
using mesh::make_uv_sphere;
using scene::Camera;
using scene::SceneTree;
using util::ThreadPool;
using util::Vec3;

// Mesh + point-cloud + avatar payloads, overlapping in depth so the
// z-pass order actually matters.
SceneTree payload_scene() {
  SceneTree tree;
  scene::MeshData ball = make_uv_sphere(0.9f, 24, 16);
  ball.base_color = {0.8f, 0.2f, 0.2f};
  tree.add_child(scene::kRootNode, "ball", std::move(ball),
                 util::Mat4::translate({-0.4f, 0.0f, 0.0f}));

  scene::MeshData slab = make_box({1.2f, 0.8f, 0.05f}, 1);
  slab.base_color = {0.2f, 0.4f, 0.9f};
  tree.add_child(scene::kRootNode, "slab", std::move(slab),
                 util::Mat4::translate({0.3f, 0.1f, -0.5f}));

  scene::PointCloudData cloud;
  cloud.point_size = 5.0f;
  for (int i = 0; i < 200; ++i) {
    const float t = static_cast<float>(i) * 0.031f;
    cloud.positions.push_back({1.2f * std::sin(t * 7.0f), 1.2f * std::cos(t * 5.0f),
                               0.8f * std::sin(t * 3.0f)});
    cloud.colors.push_back({0.5f + 0.5f * std::sin(t), 0.7f, 0.5f + 0.5f * std::cos(t)});
  }
  tree.add_child(scene::kRootNode, "cloud", std::move(cloud));

  scene::AvatarData avatar;
  avatar.user_name = "collab@host";
  avatar.size = 0.6f;
  tree.add_child(scene::kRootNode, "avatar", avatar,
                 util::Mat4::translate({0.2f, -0.6f, 0.7f}));
  return tree;
}

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  return cam;
}

void expect_identical(const FrameBuffer& a, const FrameBuffer& b, const std::string& what) {
  EXPECT_EQ(a.color(), b.color()) << what << ": color plane differs";
  EXPECT_EQ(a.depth(), b.depth()) << what << ": depth plane differs";
}

TEST(ParallelRaster, PoolRendersByteIdenticalToSerial) {
  const SceneTree tree = payload_scene();
  const Camera cam = front_camera();
  RenderStats serial_stats;
  const FrameBuffer serial = render_tree(tree, cam, 200, 150, {}, &serial_stats);
  EXPECT_GT(serial_stats.triangles_rasterized, 0u);
  EXPECT_GT(serial_stats.pixels_shaded, 0u);

  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    RenderOptions opts;
    opts.pool = &pool;
    RenderStats stats;
    const FrameBuffer parallel = render_tree(tree, cam, 200, 150, opts, &stats);
    expect_identical(serial, parallel, std::to_string(threads) + " threads");
    // Per-cell stats merge back to the serial totals.
    EXPECT_EQ(stats.triangles_submitted, serial_stats.triangles_submitted);
    EXPECT_EQ(stats.triangles_rasterized, serial_stats.triangles_rasterized);
    EXPECT_EQ(stats.pixels_shaded, serial_stats.pixels_shaded);
    EXPECT_EQ(stats.points_submitted, serial_stats.points_submitted);
  }
}

TEST(ParallelRaster, PartialRegionMatchesSerialAndFullFrame) {
  const SceneTree tree = payload_scene();
  const Camera cam = front_camera();
  // Deliberately not aligned to the 64-px binning grid.
  const Tile region{17, 9, 111, 93};
  RenderOptions serial_opts;
  serial_opts.region = region;
  Rasterizer serial(160, 120);
  serial.clear(serial_opts);
  serial.draw_tree(tree, cam, serial_opts);

  ThreadPool pool(4);
  RenderOptions pool_opts = serial_opts;
  pool_opts.pool = &pool;
  Rasterizer parallel(160, 120);
  parallel.clear(pool_opts);
  parallel.draw_tree(tree, cam, pool_opts);
  expect_identical(serial.framebuffer(), parallel.framebuffer(), "partial region");

  // Inside the region both must match the full-frame render bit-exactly
  // (tile alignment, paper §3.1.2).
  const FrameBuffer full = render_tree(tree, cam, 160, 120);
  const FrameBuffer cut = full.extract(region);
  const FrameBuffer cut_parallel = parallel.framebuffer().extract(region);
  expect_identical(cut, cut_parallel, "region vs full frame");
}

TEST(ParallelRaster, DepthCompositeWithPoolMatchesSerial) {
  const SceneTree tree = payload_scene();
  const Camera cam = front_camera();
  const FrameBuffer a = render_tree(tree, cam, 96, 96);
  Camera other = cam;
  other.eye = {0.3f, 0.1f, 3.8f};
  const FrameBuffer b = render_tree(tree, other, 96, 96);

  FrameBuffer serial = a;
  ASSERT_TRUE(depth_composite(serial, b).ok());
  ThreadPool pool(4);
  FrameBuffer parallel = a;
  ASSERT_TRUE(depth_composite(parallel, b, &pool).ok());
  expect_identical(serial, parallel, "depth composite");
}

TEST(RenderStats, MergeAccumulatesEveryField) {
  RenderStats a;
  a.triangles_submitted = 10;
  a.triangles_rasterized = 7;
  a.pixels_shaded = 1000;
  a.points_submitted = 3;
  a.nodes_culled = 2;
  RenderStats b;
  b.triangles_submitted = 5;
  b.triangles_rasterized = 4;
  b.pixels_shaded = 500;
  b.points_submitted = 8;
  b.nodes_culled = 1;
  a += b;
  EXPECT_EQ(a.triangles_submitted, 15u);
  EXPECT_EQ(a.triangles_rasterized, 11u);
  EXPECT_EQ(a.pixels_shaded, 1500u);
  EXPECT_EQ(a.points_submitted, 11u);
  EXPECT_EQ(a.nodes_culled, 3u);
  // Merging an empty stats object is the identity.
  RenderStats before = a;
  a += RenderStats{};
  EXPECT_EQ(a.pixels_shaded, before.pixels_shaded);
  EXPECT_EQ(a.triangles_submitted, before.triangles_submitted);
}

}  // namespace
}  // namespace rave::render

// Property-based and fuzz tests across module boundaries: deserializers
// must fail gracefully on corrupted input, replicas fed the same update
// stream must converge, tile splits must partition any frame, codecs must
// round-trip arbitrary images, and random structural edits must preserve
// scene-tree invariants. Deterministic PRNG — failures reproduce.
#include <gtest/gtest.h>

#include <random>

#include "compress/codec.hpp"
#include "core/protocol.hpp"
#include "render/compositor.hpp"
#include "mesh/primitives.hpp"
#include "render/framebuffer.hpp"
#include "scene/serialize.hpp"
#include "scene/tree.hpp"
#include "scene/update.hpp"
#include "services/soap.hpp"
#include "services/xml.hpp"

namespace rave {
namespace {

using scene::kRootNode;
using scene::NodeId;
using scene::SceneTree;

// --- fuzzing deserializers ----------------------------------------------------

std::vector<uint8_t> mutate(std::vector<uint8_t> bytes, std::mt19937& rng) {
  if (bytes.empty()) return bytes;
  std::uniform_int_distribution<size_t> pos(0, bytes.size() - 1);
  std::uniform_int_distribution<int> val(0, 255);
  const int mutations = 1 + static_cast<int>(rng() % 8);
  for (int i = 0; i < mutations; ++i) bytes[pos(rng)] = static_cast<uint8_t>(val(rng));
  return bytes;
}

TEST(Fuzz, TreeDeserializerNeverCrashes) {
  SceneTree tree;
  tree.add_child(kRootNode, "mesh", mesh::make_uv_sphere(0.5f, 8, 6));
  scene::AvatarData avatar;
  avatar.user_name = "fuzz";
  tree.add_child(kRootNode, "avatar", avatar);
  const std::vector<uint8_t> clean = scene::serialize_tree(tree);

  std::mt19937 rng(1234);
  int parsed_ok = 0;
  for (int round = 0; round < 300; ++round) {
    const auto corrupted = mutate(clean, rng);
    auto result = scene::deserialize_tree(corrupted);  // must not crash/UB
    if (result.ok()) {
      ++parsed_ok;
      // Whatever parsed must still be a structurally valid tree.
      const SceneTree& t = result.value();
      for (NodeId id : t.ids_depth_first()) {
        const scene::SceneNode* node = t.find(id);
        ASSERT_NE(node, nullptr);
        if (id != kRootNode) {
          ASSERT_TRUE(t.contains(node->parent));
        }
      }
    }
  }
  // Some mutations only touch float payloads and still parse — fine.
  SUCCEED() << parsed_ok << " of 300 mutants still parsed";
}

TEST(Fuzz, TruncatedTreeAlwaysRejectedGracefully) {
  SceneTree tree;
  tree.add_child(kRootNode, "mesh", mesh::make_uv_sphere(0.5f, 8, 6));
  const std::vector<uint8_t> clean = scene::serialize_tree(tree);
  for (size_t len = 0; len < clean.size(); len += 17) {
    std::vector<uint8_t> cut(clean.begin(), clean.begin() + static_cast<ptrdiff_t>(len));
    (void)scene::deserialize_tree(cut);  // graceful error or partial parse, no crash
  }
  SUCCEED();
}

TEST(Fuzz, ProtocolDecodersRejectRandomPayloads) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    net::Message msg;
    msg.type = static_cast<uint16_t>(0x0100 + rng() % 0x30);
    msg.payload.resize(rng() % 128);
    for (auto& b : msg.payload) b = static_cast<uint8_t>(byte(rng));
    // Every decoder must return an error or a value — never crash.
    (void)core::decode_subscribe(msg);
    (void)core::decode_snapshot(msg);
    (void)core::decode_update(msg);
    (void)core::decode_frame_request(msg);
    (void)core::decode_frame(msg);
    (void)core::decode_tile_assign(msg);
    (void)core::decode_tile_result(msg);
    (void)core::decode_load_report(msg);
    (void)core::decode_interest_set(msg);
  }
  SUCCEED();
}

TEST(Fuzz, XmlParserSurvivesMangledDocuments) {
  const std::string base =
      "<soap:Envelope xmlns:soap=\"x\"><soap:Body><rave:Call service=\"s\" method=\"m\" "
      "id=\"1\"><arg xsi:type=\"xsd:long\">42</arg></rave:Call></soap:Body></soap:Envelope>";
  std::mt19937 rng(7);
  for (int round = 0; round < 300; ++round) {
    std::string mangled = base;
    const int cuts = 1 + static_cast<int>(rng() % 5);
    for (int c = 0; c < cuts; ++c) {
      const size_t pos = rng() % mangled.size();
      mangled[pos] = static_cast<char>(32 + rng() % 90);
    }
    (void)services::parse_xml(mangled);
    (void)services::decode_call(mangled);
  }
  SUCCEED();
}

// --- replica convergence ---------------------------------------------------------

scene::SceneUpdate random_update(SceneTree& authority, std::mt19937& rng) {
  const auto ids = authority.ids_depth_first();
  std::uniform_int_distribution<size_t> pick(0, ids.size() - 1);
  switch (rng() % 4) {
    case 0: {  // add
      scene::SceneNode node;
      node.id = authority.allocate_id();
      node.name = "n" + std::to_string(node.id);
      if (rng() % 2 == 0) node.payload = mesh::make_cone(0.1f, 0.2f, 6);
      return scene::SceneUpdate::add_node(ids[pick(rng)], std::move(node));
    }
    case 1:  // remove (may target root → refused identically everywhere)
      return scene::SceneUpdate::remove_node(ids[pick(rng)]);
    case 2:
      return scene::SceneUpdate::set_transform(
          ids[pick(rng)],
          util::Mat4::translate({static_cast<float>(rng() % 10), 0, 0}));
    default:
      return scene::SceneUpdate::reparent(ids[pick(rng)], ids[pick(rng)]);
  }
}

TEST(Property, ReplicasConvergeUnderRandomUpdateStream) {
  // The server-ordered update model: any stream of updates applied in the
  // same order to two replicas (through a serialize/deserialize hop, as on
  // the wire) yields identical trees.
  SceneTree authority;
  SceneTree replica;
  std::mt19937 rng(2026);
  int applied = 0;
  for (int i = 0; i < 400; ++i) {
    scene::SceneUpdate update = random_update(authority, rng);
    const util::Status on_authority = update.apply(authority);
    // Wire hop.
    util::ByteWriter w;
    scene::write_update(w, update);
    util::ByteReader r(w.data());
    auto decoded = scene::read_update(r);
    ASSERT_TRUE(decoded.ok());
    const util::Status on_replica = decoded.value().apply(replica);
    ASSERT_EQ(on_authority.ok(), on_replica.ok()) << "divergent acceptance at step " << i;
    if (on_authority.ok()) ++applied;
    replica.bump_next_id(authority.peek_next_id() - 1);
  }
  ASSERT_GT(applied, 100);
  // Structural equality via canonical serialization.
  EXPECT_EQ(scene::serialize_tree(authority), scene::serialize_tree(replica));
}

TEST(Property, TreeInvariantsSurviveRandomOps) {
  SceneTree tree;
  std::mt19937 rng(5);
  for (int i = 0; i < 500; ++i) (void)random_update(tree, rng).apply(tree);
  // Invariants: every node's parent exists and lists it exactly once; the
  // root is present; depth-first enumeration reaches every node.
  const auto ids = tree.ids_depth_first();
  EXPECT_EQ(ids.size(), tree.node_count());
  for (NodeId id : ids) {
    const scene::SceneNode* node = tree.find(id);
    ASSERT_NE(node, nullptr);
    if (id == kRootNode) continue;
    const scene::SceneNode* parent = tree.find(node->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(std::count(parent->children.begin(), parent->children.end(), id), 1);
  }
}

// --- tiles ------------------------------------------------------------------------

TEST(Property, TileSplitPartitionsAnyFrame) {
  std::mt19937 rng(11);
  for (int round = 0; round < 100; ++round) {
    const int w = 1 + static_cast<int>(rng() % 1920);
    const int h = 1 + static_cast<int>(rng() % 1080);
    const int count = 1 + static_cast<int>(rng() % 12);
    const auto tiles = render::split_tiles(w, h, count);
    ASSERT_EQ(static_cast<int>(tiles.size()), count);
    // Exact cover: area sums and no tile escapes the frame.
    uint64_t area = 0;
    for (const auto& t : tiles) {
      ASSERT_GE(t.x, 0);
      ASSERT_GE(t.y, 0);
      ASSERT_LE(t.right(), w);
      ASSERT_LE(t.bottom(), h);
      area += t.pixel_count();
    }
    ASSERT_EQ(area, static_cast<uint64_t>(w) * static_cast<uint64_t>(h))
        << w << "x" << h << " in " << count;
    // Pairwise disjoint.
    for (size_t a = 0; a < tiles.size(); ++a)
      for (size_t b = a + 1; b < tiles.size(); ++b) {
        const bool overlap = tiles[a].x < tiles[b].right() && tiles[b].x < tiles[a].right() &&
                             tiles[a].y < tiles[b].bottom() && tiles[b].y < tiles[a].bottom();
        ASSERT_FALSE(overlap && tiles[a].pixel_count() && tiles[b].pixel_count());
      }
  }
}

// --- codecs ------------------------------------------------------------------------

TEST(Property, LosslessCodecsRoundTripRandomImages) {
  std::mt19937 rng(21);
  for (int round = 0; round < 40; ++round) {
    const int w = 1 + static_cast<int>(rng() % 96);
    const int h = 1 + static_cast<int>(rng() % 96);
    render::Image img(w, h);
    // Mix of noise and runs to stress both RLE branches.
    uint8_t current = 0;
    for (auto& b : img.rgb) {
      if (rng() % 7 == 0) current = static_cast<uint8_t>(rng());
      b = current;
    }
    for (auto kind : {compress::CodecKind::Raw, compress::CodecKind::Rle,
                      compress::CodecKind::Delta}) {
      auto codec = compress::make_codec(kind);
      auto decoded = codec->decode(codec->encode(img, nullptr), nullptr);
      ASSERT_TRUE(decoded.ok()) << compress::codec_name(kind);
      ASSERT_EQ(decoded.value().rgb, img.rgb)
          << compress::codec_name(kind) << " " << w << "x" << h;
    }
  }
}

TEST(Property, DeltaChainsReconstructExactly) {
  // Arbitrary-length delta chains (keyframe + N deltas) decode exactly.
  std::mt19937 rng(31);
  auto codec = compress::make_codec(compress::CodecKind::Delta);
  render::Image prev_encoded(32, 32), prev_decoded(32, 32);
  bool have_prev = false;
  render::Image frame(32, 32);
  for (int step = 0; step < 20; ++step) {
    // Small random change.
    for (int i = 0; i < 10; ++i)
      frame.rgb[rng() % frame.rgb.size()] = static_cast<uint8_t>(rng());
    const auto encoded = codec->encode(frame, have_prev ? &prev_encoded : nullptr);
    auto decoded = codec->decode(encoded, have_prev ? &prev_decoded : nullptr);
    ASSERT_TRUE(decoded.ok()) << "step " << step;
    ASSERT_EQ(decoded.value().rgb, frame.rgb) << "step " << step;
    prev_encoded = frame;
    prev_decoded = decoded.value();
    have_prev = true;
  }
}

// --- framebuffer --------------------------------------------------------------------

TEST(Property, ExtractInsertIsIdentityOnRandomTiles) {
  std::mt19937 rng(41);
  render::FrameBuffer fb(64, 48);
  for (size_t i = 0; i < fb.color().size(); ++i) fb.color()[i] = static_cast<uint8_t>(rng());
  for (size_t i = 0; i < fb.depth().size(); ++i)
    fb.depth()[i] = static_cast<float>(rng() % 1000) / 1000.0f;
  for (int round = 0; round < 50; ++round) {
    const int x = static_cast<int>(rng() % 64);
    const int y = static_cast<int>(rng() % 48);
    const render::Tile tile{x, y, 1 + static_cast<int>(rng() % (64 - x)),
                            1 + static_cast<int>(rng() % (48 - y))};
    render::FrameBuffer copy = fb;
    copy.insert(tile, fb.extract(tile));
    ASSERT_EQ(copy.color(), fb.color());
    ASSERT_EQ(copy.depth(), fb.depth());
  }
}

TEST(Property, DepthCompositeIsOrderIndependentForDisjointDepths) {
  std::mt19937 rng(51);
  render::FrameBuffer a(16, 16), b(16, 16), c(16, 16);
  for (auto* fb : {&a, &b, &c}) {
    fb->clear({0, 0, 0});
    for (int i = 0; i < 40; ++i) {
      const int x = static_cast<int>(rng() % 16), y = static_cast<int>(rng() % 16);
      fb->set_pixel(x, y, static_cast<uint8_t>(rng()), static_cast<uint8_t>(rng()), 0);
      fb->set_depth(x, y, static_cast<float>(1 + rng() % 997) / 1000.0f);
    }
  }
  render::FrameBuffer abc = a;
  ASSERT_TRUE(render::depth_composite(abc, b).ok());
  ASSERT_TRUE(render::depth_composite(abc, c).ok());
  render::FrameBuffer cba = c;
  ASSERT_TRUE(render::depth_composite(cba, b).ok());
  ASSERT_TRUE(render::depth_composite(cba, a).ok());
  EXPECT_EQ(abc.depth(), cba.depth());
  EXPECT_EQ(abc.color(), cba.color());
}

}  // namespace
}  // namespace rave

// End-to-end integration tests: data service ↔ render services ↔ thin
// clients over the in-process fabric — subscription/bootstrap, update
// fan-out, collaboration avatars, dataset and tile distribution,
// migration, refusal, and session persistence.
#include <gtest/gtest.h>

#include "core/data_service.hpp"
#include "core/fabric.hpp"
#include "core/render_service.hpp"
#include "core/thin_client.hpp"
#include "mesh/primitives.hpp"
#include "scene/serialize.hpp"

namespace rave::core {
namespace {

using scene::Camera;
using scene::kRootNode;
using scene::SceneTree;

scene::MeshData colored_sphere(const util::Vec3& color, int detail = 16) {
  scene::MeshData mesh = mesh::make_uv_sphere(0.8f, detail, detail * 3 / 4);
  mesh.base_color = color;
  return mesh;
}

class RaveFixture : public testing::Test {
 protected:
  RaveFixture() : fabric_(clock_), data_(clock_, data_options()) {
    data_ap_ = fabric_.listen("datahost/data",
                              [this](net::ChannelPtr ch) { data_.accept(std::move(ch)); })
                   .value();
  }

  static DataService::Options data_options() {
    DataService::Options options;
    options.auto_rebalance = false;
    return options;
  }

  RenderService& add_render(const std::string& host, double polys_per_sec = 10e6) {
    RenderService::Options options;
    options.profile = sim::centrino_laptop();
    options.profile.name = host;
    options.profile.tri_rate = polys_per_sec;
    auto service = std::make_unique<RenderService>(clock_, fabric_, options);
    (void)service->listen_clients(host + "/clients");
    (void)service->listen_peer(host + "/peer");
    renders_.push_back(std::move(service));
    return *renders_.back();
  }

  void pump_all(int rounds = 50) {
    for (int i = 0; i < rounds; ++i) {
      size_t handled = data_.pump();
      for (auto& r : renders_) handled += r->pump();
      if (handled == 0) return;
    }
  }

  std::function<void()> pump_fn() {
    return [this] { pump_all(5); };
  }

  util::SimClock clock_;
  InProcFabric fabric_;
  DataService data_;
  std::string data_ap_;
  std::vector<std::unique_ptr<RenderService>> renders_;
};

TEST_F(RaveFixture, SubscribeBootstrapsSnapshot) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({1, 0, 0}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());

  RenderService& render = add_render("laptop");
  ASSERT_TRUE(render.connect_session(data_ap_, "demo").ok());
  pump_all();
  ASSERT_TRUE(render.bootstrapped("demo"));
  EXPECT_EQ(render.replica("demo")->node_count(), 2u);
  EXPECT_EQ(data_.subscribers("demo").size(), 1u);
}

TEST_F(RaveFixture, SubscribeToMissingSessionRefused) {
  RenderService& render = add_render("laptop");
  ASSERT_TRUE(render.connect_session(data_ap_, "ghost").ok());
  pump_all();
  EXPECT_FALSE(render.bootstrapped("ghost"));
  EXPECT_TRUE(data_.subscribers("ghost").empty());
}

TEST_F(RaveFixture, UpdatesFanOutToAllSubscribers) {
  SceneTree tree;
  const scene::NodeId ball = tree.add_child(kRootNode, "ball", colored_sphere({1, 0, 0}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());

  RenderService& a = add_render("a");
  RenderService& b = add_render("b");
  ASSERT_TRUE(a.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(b.connect_session(data_ap_, "demo").ok());
  pump_all();

  // a moves the ball; both replicas and the master converge.
  const util::Mat4 moved = util::Mat4::translate({5, 0, 0});
  ASSERT_TRUE(a.submit_update("demo", scene::SceneUpdate::set_transform(ball, moved)).ok());
  pump_all();
  EXPECT_EQ(data_.session_tree("demo")->find(ball)->transform, moved);
  EXPECT_EQ(a.replica("demo")->find(ball)->transform, moved);
  EXPECT_EQ(b.replica("demo")->find(ball)->transform, moved);
  EXPECT_EQ(data_.committed_updates("demo"), 1u);
}

TEST_F(RaveFixture, ThinClientReceivesFrames) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({1, 0.2f, 0.2f}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& render = add_render("laptop");
  ASSERT_TRUE(render.connect_session(data_ap_, "demo").ok());
  pump_all();

  ThinClient pda(clock_, fabric_);
  ASSERT_TRUE(pda.connect(render.client_access_point(), "demo").ok());
  Camera cam;
  cam.eye = {0, 0, 3};
  auto frame = pda.request_frame(cam, 200, 200, 5.0, pump_fn());
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().width, 200);
  // The sphere is visible: center differs from the corner background.
  const auto* center = frame.value().pixel(100, 100);
  const auto* corner = frame.value().pixel(2, 2);
  EXPECT_NE(center[0], corner[0]);
  EXPECT_GT(pda.last_stats().total_latency, 0.0);
  EXPECT_GT(pda.last_stats().image_bytes, 0u);
}

TEST_F(RaveFixture, ThinClientAvatarCollaboration) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({0.5f, 0.5f, 1.0f}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& render = add_render("laptop");
  RenderService& other = add_render("desktop");
  ASSERT_TRUE(render.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(other.connect_session(data_ap_, "demo").ok());
  pump_all();

  ThinClient pda(clock_, fabric_);
  ASSERT_TRUE(pda.connect(render.client_access_point(), "demo").ok());
  auto avatar = pda.create_avatar("alice", 5.0, pump_fn());
  ASSERT_TRUE(avatar.ok()) << avatar.error();

  // The avatar is visible in every replica — the fig. 3 collaboration.
  EXPECT_TRUE(other.replica("demo")->contains(avatar.value()));
  EXPECT_TRUE(data_.session_tree("demo")->find(avatar.value())->is_avatar());

  // Moving the camera moves the avatar everywhere.
  Camera cam;
  cam.eye = {4, 2, 4};
  ASSERT_TRUE(pda.move_avatar(avatar.value(), cam).ok());
  pump_all();
  const util::Vec3 pos =
      other.replica("demo")->find(avatar.value())->transform.transform_point({0, 0, 0});
  EXPECT_NEAR(pos.x, 4.0f, 1e-4f);
  EXPECT_NEAR(pos.y, 2.0f, 1e-4f);
}

TEST_F(RaveFixture, DatasetDistributionAssignsSubsets) {
  SceneTree tree;
  for (int i = 0; i < 6; ++i)
    tree.add_child(kRootNode, "part" + std::to_string(i), colored_sphere({1, 1, 1}, 24));
  ASSERT_TRUE(data_.create_session("big", std::move(tree)).ok());

  // Each service can only hold half the scene at the target rate.
  const auto costs = payload_costs(*data_.session_tree("big"));
  double total = 0;
  for (const auto& c : costs) total += c.work_units();
  const double per_service_budget = total * 0.6;
  RenderService& a = add_render("a", per_service_budget * 15.0);
  RenderService& b = add_render("b", per_service_budget * 15.0);
  ASSERT_TRUE(a.connect_session(data_ap_, "big").ok());
  ASSERT_TRUE(b.connect_session(data_ap_, "big").ok());
  pump_all();

  ASSERT_TRUE(data_.distribute("big").ok());
  pump_all();
  const auto views = data_.subscribers("big");
  ASSERT_EQ(views.size(), 2u);
  EXPECT_FALSE(views[0].whole_tree);
  EXPECT_FALSE(views[1].whole_tree);
  EXPECT_FALSE(views[0].interest.empty());
  EXPECT_FALSE(views[1].interest.empty());
  // Disjoint interest sets covering all six parts.
  std::set<scene::NodeId> all;
  for (const auto& v : views)
    for (scene::NodeId id : v.interest) EXPECT_TRUE(all.insert(id).second);
  EXPECT_EQ(all.size(), 6u);
}

TEST_F(RaveFixture, DistributionRefusesWhenTooSmall) {
  SceneTree tree;
  tree.add_child(kRootNode, "huge", colored_sphere({1, 1, 1}, 64));
  ASSERT_TRUE(data_.create_session("big", std::move(tree)).ok());
  RenderService& tiny = add_render("tiny", 1'000.0);  // ~67 tris per frame
  ASSERT_TRUE(tiny.connect_session(data_ap_, "big").ok());
  pump_all();
  const util::Status st = data_.distribute("big");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().find("insufficient rendering capacity"), std::string::npos);
}

TEST_F(RaveFixture, SubsetCompositingMatchesMonolithic) {
  // Two subset holders + compositor reproduce the single-replica image.
  SceneTree tree;
  tree.add_child(kRootNode, "left", colored_sphere({1, 0, 0}),
                 util::Mat4::translate({-0.7f, 0, 0.4f}));
  tree.add_child(kRootNode, "right", colored_sphere({0, 0, 1}),
                 util::Mat4::translate({0.7f, 0, -0.4f}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());

  RenderService& a = add_render("a");
  RenderService& b = add_render("b");
  for (auto* r : {&a, &b}) ASSERT_TRUE(r->connect_session(data_ap_, "demo").ok());
  pump_all();

  Camera cam;
  cam.eye = {0, 0, 4};
  // Reference: a monolithic render of the master scene.
  const render::FrameBuffer reference =
      render::render_tree(*data_.session_tree("demo"), cam, 96, 96);
  ASSERT_LT(reference.depth_at(28, 48), 1.0f);

  // Distribute the two spheres across a and b.
  ASSERT_TRUE(data_.distribute("demo").ok());
  pump_all();
  // a composites: its own subset plus b's subset frame.
  ASSERT_TRUE(a.enable_subset_compositing("demo", {b.peer_access_point()}).ok());
  // First call kicks requests; pump; second call composites fresh frames.
  (void)a.render_distributed("demo", cam, 96, 96);
  pump_all();
  auto composite = a.render_distributed("demo", cam, 96, 96);
  ASSERT_TRUE(composite.ok());
  // Both spheres must be present in the composite (center columns of each
  // half are non-background).
  const render::FrameBuffer& fb = composite.value();
  EXPECT_LT(fb.depth_at(28, 48), 1.0f);  // left sphere
  EXPECT_LT(fb.depth_at(68, 48), 1.0f);  // right sphere
  EXPECT_GT(a.stats().remote_tiles_used, 0u);
}

TEST_F(RaveFixture, TileAssistViaDataService) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({0.9f, 0.6f, 0.1f}, 24));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& main = add_render("main");
  RenderService& helper = add_render("helper", 40e6);
  ASSERT_TRUE(main.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(helper.connect_session(data_ap_, "demo").ok());
  pump_all();

  // The data service forwards the assist request to the strongest peer.
  ASSERT_TRUE(main.request_tile_assist("demo", 1).ok());
  pump_all();

  Camera cam;
  cam.eye = {0, 0, 3};
  (void)main.render_distributed("demo", cam, 64, 64);
  pump_all();
  auto frame = main.render_distributed("demo", cam, 64, 64);
  ASSERT_TRUE(frame.ok());
  EXPECT_GT(main.stats().remote_tiles_used, 0u);
  EXPECT_GT(helper.stats().peer_tiles_rendered, 0u);

  // Tiled output equals a monolithic render of the same replica.
  auto reference = main.render_console("demo", cam, 64, 64);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(frame.value().color(), reference.value().color());
}

TEST_F(RaveFixture, StalledAssistantProducesStaleTiles) {
  // Fig. 5: artificially stalling the remote render service yields tiles
  // from an older generation — the tearing artifact.
  SceneTree tree;
  const scene::NodeId ball =
      tree.add_child(kRootNode, "ball", colored_sphere({0.9f, 0.2f, 0.2f}, 20));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& main = add_render("main");
  RenderService& helper = add_render("helper");
  ASSERT_TRUE(main.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(helper.connect_session(data_ap_, "demo").ok());
  pump_all();
  ASSERT_TRUE(main.enable_tile_assist("demo", {helper.peer_access_point()}).ok());
  helper.set_assist_stall(10.0);  // results arrive 10 virtual seconds late

  Camera cam;
  cam.eye = {0, 0, 3};
  (void)main.render_distributed("demo", cam, 64, 64);
  pump_all();
  // Scene changes while the assistant's reply is still in flight.
  ASSERT_TRUE(main.submit_update("demo", scene::SceneUpdate::set_transform(
                                             ball, util::Mat4::translate({2, 0, 0}))).ok());
  clock_.advance(11.0);  // stalled reply becomes deliverable
  pump_all();
  (void)main.render_distributed("demo", cam, 64, 64);
  EXPECT_GT(main.stats().stale_tiles_used, 0u);  // tearing observed
}

TEST_F(RaveFixture, MigrationMovesWorkFromOverloaded) {
  SceneTree tree;
  for (int i = 0; i < 4; ++i)
    tree.add_child(kRootNode, "part" + std::to_string(i), colored_sphere({1, 1, 1}, 24));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  const auto costs = payload_costs(*data_.session_tree("demo"));
  double total = 0;
  for (const auto& c : costs) total += c.work_units();

  RenderService& weak = add_render("weak", total * 0.6 * 15.0);
  RenderService& strong = add_render("strong", total * 2.0 * 15.0);
  ASSERT_TRUE(weak.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(strong.connect_session(data_ap_, "demo").ok());
  pump_all();
  // Everything starts on `weak` (manual assignment through migration API).
  ASSERT_TRUE(data_.distribute("demo").ok());
  pump_all();

  // Report sustained overload from `weak`.
  auto views = data_.subscribers("demo");
  const auto weak_view = std::find_if(views.begin(), views.end(), [](const auto& v) {
    return v.host == "weak";
  });
  ASSERT_NE(weak_view, views.end());
  // Feed the tracker with slow frames through the real pipeline: render a
  // few console frames on `weak` (simulate_timing is off, so we push load
  // reports directly instead).
  Camera cam;
  cam.eye = {0, 0, 4};
  for (int i = 0; i < 30; ++i) {
    clock_.advance(0.2);
    (void)weak.render_console("demo", cam, 32, 32);
    pump_all();
  }
  // LoadTracker on the data side now has samples; force a rebalance round.
  const auto actions = data_.rebalance("demo");
  ASSERT_TRUE(actions.ok()) << actions.error();
  // Whether moves trigger depends on measured fps; at minimum the call is
  // safe and leaves a consistent system.
  pump_all();
  const auto after = data_.subscribers("demo");
  std::set<scene::NodeId> seen;
  size_t with_interest = 0;
  for (const auto& v : after) {
    if (!v.whole_tree) ++with_interest;
    for (auto id : v.interest) seen.insert(id);
  }
  EXPECT_EQ(with_interest, after.size());
  EXPECT_EQ(seen.size(), 4u);  // every part still owned by someone
}

TEST_F(RaveFixture, SessionSaveAndResume) {
  SceneTree tree;
  const scene::NodeId ball = tree.add_child(kRootNode, "ball", colored_sphere({1, 0, 0}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& render = add_render("laptop");
  ASSERT_TRUE(render.connect_session(data_ap_, "demo").ok());
  pump_all();
  ASSERT_TRUE(render
                  .submit_update("demo", scene::SceneUpdate::set_transform(
                                             ball, util::Mat4::translate({1, 2, 3})))
                  .ok());
  pump_all();

  const std::string path = testing::TempDir() + "/rave_session.bin";
  ASSERT_TRUE(data_.save_session("demo", path).ok());

  // A later data service resumes the session: asynchronous collaboration.
  DataService resumed(clock_);
  ASSERT_TRUE(resumed.load_session("demo", path).ok());
  const scene::SceneTree* resumed_tree = resumed.session_tree("demo");
  ASSERT_NE(resumed_tree, nullptr);
  EXPECT_EQ(resumed_tree->find(ball)->transform.transform_point({0, 0, 0}),
            (util::Vec3{1, 2, 3}));
  EXPECT_EQ(resumed.committed_updates("demo"), 1u);
  std::remove(path.c_str());
}

TEST_F(RaveFixture, DisconnectRemovesSubscriberAndAvatar) {
  SceneTree tree;
  tree.add_child(kRootNode, "ball", colored_sphere({1, 1, 1}));
  ASSERT_TRUE(data_.create_session("demo", std::move(tree)).ok());
  RenderService& render = add_render("laptop");
  RenderService& watcher = add_render("watcher");
  ASSERT_TRUE(render.connect_session(data_ap_, "demo").ok());
  ASSERT_TRUE(watcher.connect_session(data_ap_, "demo").ok());
  pump_all();

  ThinClient pda(clock_, fabric_);
  ASSERT_TRUE(pda.connect(render.client_access_point(), "demo").ok());
  auto avatar = pda.create_avatar("bob", 5.0, pump_fn());
  ASSERT_TRUE(avatar.ok());
  ASSERT_TRUE(watcher.replica("demo")->contains(avatar.value()));

  // The render service (the avatar's author from the data service's view)
  // disconnecting retires the avatar for everyone else.
  const auto before = data_.subscribers("demo").size();
  // Find render's channel by closing its replica connection: simulate by
  // destroying the service object's session — here we close via disconnect
  // of the whole service (drop it from pumping and close channels).
  // Simplest: close the thin client, then the render service's data
  // channel by destroying the service.
  pda.disconnect();
  renders_.erase(renders_.begin());  // destroys `render`, closing channels
  pump_all();
  EXPECT_LT(data_.subscribers("demo").size(), before);
  EXPECT_FALSE(data_.session_tree("demo")->contains(avatar.value()));
  EXPECT_FALSE(watcher.replica("demo")->contains(avatar.value()));
}

}  // namespace
}  // namespace rave::core

// Property suite for the fast volume path (DESIGN.md "Fast volume path"):
// the macro-cell–skipping, SIMD-packet ray marcher must be byte-identical
// to the brute-force scalar march across {serial, pooled} × {scalar, every
// supported SIMD level} × {brick-skipped, brute} × {culled, unculled}, the
// depth plane must record thin volumes so later geometry composites behind
// them, and the measured rays/s cost model must survive the wire and show
// up in migration explains. Carries the `raycast` and `tsan` ctest labels
// so sanitizer builds exercise the pooled marcher.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/migration.hpp"
#include "core/protocol.hpp"
#include "mesh/fields.hpp"
#include "mesh/primitives.hpp"
#include "render/rasterizer.hpp"
#include "render/raycast.hpp"
#include "render/render_list.hpp"
#include "scene/bricks.hpp"
#include "scene/camera.hpp"
#include "scene/update.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace rave {
namespace {

using render::FrameBuffer;
using render::Rasterizer;
using render::RaycastOptions;
using render::RenderStats;
using scene::Camera;
using scene::SceneTree;
using scene::VoxelGridData;
using util::SimdLevel;
using util::Vec3;

// --- fixtures ---------------------------------------------------------------

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  return cam;
}

VoxelGridData ball_grid(uint32_t n, const Vec3& center = {0.2f, 0, 0}, float radius = 0.9f) {
  scene::Aabb bounds;
  bounds.extend({-1, -1, -1});
  bounds.extend({1, 1, 1});
  VoxelGridData grid = mesh::rasterize_field(mesh::ball_field(center, radius), bounds, n, n, n);
  grid.iso_low = 0.05f;
  grid.opacity_scale = 3.0f;
  return grid;
}

// Mostly-empty volume: a small off-centre ball in a 32^3 grid, so whole
// bricks are transparent — the empty-space-skipping headline case.
VoxelGridData sparse_grid() { return ball_grid(32, {0.55f, 0.55f, 0.55f}, 0.35f); }

VoxelGridData empty_grid(uint32_t n) {
  VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = n;
  grid.origin = {-1, -1, -1};
  const float s = 2.0f / static_cast<float>(n - 1);
  grid.spacing = {s, s, s};
  grid.values.assign(grid.voxel_count(), 0.0f);
  grid.iso_low = 0.05f;
  grid.opacity_scale = 3.0f;
  return grid;
}

// Hot voxels sitting exactly on 8^3 brick boundaries: the support-expanded
// min/max must keep the bricks on *both* sides of the seam opaque.
VoxelGridData brick_boundary_grid() {
  VoxelGridData grid = empty_grid(32);
  grid.at(7, 7, 7) = 1.0f;
  grid.at(8, 8, 8) = 1.0f;
  grid.at(16, 7, 16) = 1.0f;
  grid.at(31, 31, 31) = 1.0f;  // grid corner = brick corner
  grid.at(0, 16, 0) = 1.0f;
  return grid;
}

VoxelGridData random_grid(uint32_t n, uint32_t seed) {
  VoxelGridData grid = empty_grid(n);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dense(0.0f, 1.0f);
  for (float& v : grid.values) {
    const float u = dense(rng);
    // ~70% of voxels below iso_low, the rest spread up to full density.
    v = u < 0.7f ? u * 0.05f : (u - 0.7f) * 3.0f;
  }
  return grid;
}

std::pair<FrameBuffer, RenderStats> render_volume(const VoxelGridData& grid,
                                                  const RaycastOptions& options,
                                                  const Camera& cam = front_camera()) {
  FrameBuffer fb(96, 72);
  fb.clear({0, 0, 0});
  RenderStats st = render::raycast_volume(fb, grid, util::Mat4::identity(), cam, options);
  return {std::move(fb), st};
}

void expect_identical(const FrameBuffer& a, const FrameBuffer& b, const std::string& what) {
  EXPECT_EQ(a.color(), b.color()) << what << ": color plane differs";
  EXPECT_EQ(a.depth(), b.depth()) << what << ": depth plane differs";
}

std::vector<SimdLevel> supported_levels() {
  const SimdLevel before = util::active_simd_level();
  std::vector<SimdLevel> out{SimdLevel::Scalar};
  for (const SimdLevel l : {SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon}) {
    util::set_simd_level(l);
    if (util::active_simd_level() == l) out.push_back(l);
  }
  util::set_simd_level(before);
  return out;
}

struct LevelGuard {
  SimdLevel saved = util::active_simd_level();
  ~LevelGuard() { util::set_simd_level(saved); }
};

// --- brick skipping ---------------------------------------------------------

TEST(RaycastSkip, BruteVsSkipByteIdentical) {
  struct Case {
    std::string name;
    VoxelGridData grid;
  };
  const std::vector<Case> cases = {
      {"sparse", sparse_grid()},
      {"dense-ball", ball_grid(24)},
      {"ragged-20", ball_grid(20, {-0.3f, 0.4f, 0.1f}, 0.5f)},  // not a multiple of 8
      {"brick-boundary", brick_boundary_grid()},
      {"random", random_grid(32, 1234)},
      {"tiny-5", ball_grid(5)},  // smaller than one brick
  };
  for (const Case& c : cases) {
    RaycastOptions brute;
    brute.empty_skip = false;
    RaycastOptions skip;
    skip.empty_skip = true;
    const auto [fb_brute, st_brute] = render_volume(c.grid, brute);
    const auto [fb_skip, st_skip] = render_volume(c.grid, skip);
    expect_identical(fb_brute, fb_skip, c.name);
    // Skipping may only remove transparent samples, never shaded ones.
    EXPECT_EQ(st_brute.volume_samples, st_skip.volume_samples) << c.name;
    EXPECT_EQ(st_brute.rays_cast, st_skip.rays_cast) << c.name;
    EXPECT_EQ(st_brute.bricks_skipped, 0u) << c.name;
  }
}

TEST(RaycastSkip, SparseVolumeActuallySkips) {
  RaycastOptions skip;
  skip.empty_skip = true;
  const auto [fb, st] = render_volume(sparse_grid(), skip);
  EXPECT_GT(st.rays_cast, 0u);
  EXPECT_GT(st.bricks_skipped, 0u);
  EXPECT_GT(st.volume_samples, 0u);  // the ball still shades
}

TEST(RaycastSkip, MacroCellsCachedAndInvalidated) {
  VoxelGridData grid = empty_grid(16);
  const auto cells = grid.macro_cells();
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells.get(), grid.macro_cells().get());  // cached, not rebuilt
  for (float m : cells->max_v) EXPECT_LT(m, 0.05f);

  // Direct mutation + explicit invalidation rebuilds with the new bounds.
  grid.at(0, 0, 0) = 1.0f;
  grid.invalidate_macro_cells();
  const auto rebuilt = grid.macro_cells();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), cells.get());
  EXPECT_GT(rebuilt->max_v[0], 0.9f);
}

TEST(RaycastSkip, SetPayloadDropsStaleMacroCells) {
  SceneTree tree;
  const scene::NodeId vol = tree.add_child(scene::kRootNode, "volume", empty_grid(16));
  const auto* before = std::get_if<VoxelGridData>(&tree.find(vol)->payload);
  ASSERT_NE(before, nullptr);
  const auto stale = before->macro_cells();
  for (float m : stale->max_v) EXPECT_LT(m, 0.05f);

  // The scene/update path replaces the payload wholesale; the replacement
  // carries no cache, so the next render sees the hot voxel.
  VoxelGridData hot = empty_grid(16);
  hot.at(8, 8, 8) = 1.0f;
  ASSERT_TRUE(scene::SceneUpdate::set_payload(vol, hot).apply(tree).ok());
  const auto* after = std::get_if<VoxelGridData>(&tree.find(vol)->payload);
  ASSERT_NE(after, nullptr);
  const auto fresh = after->macro_cells();
  EXPECT_NE(fresh.get(), stale.get());
  float max_seen = 0;
  for (float m : fresh->max_v) max_seen = std::max(max_seen, m);
  EXPECT_GT(max_seen, 0.9f);
}

// --- SIMD packets × thread pool ---------------------------------------------

TEST(RaycastSimd, ScalarVsSimdSerialPooledByteIdentical) {
  const std::vector<VoxelGridData> grids = {ball_grid(24), sparse_grid(), random_grid(20, 77)};
  const auto levels = supported_levels();
  util::ThreadPool pool(4);
  LevelGuard guard;
  for (size_t gi = 0; gi < grids.size(); ++gi) {
    // Reference: scalar, serial, brute march.
    util::set_simd_level(SimdLevel::Scalar);
    RaycastOptions ref_opts;
    ref_opts.empty_skip = false;
    const auto [reference, ref_stats] = render_volume(grids[gi], ref_opts);
    ASSERT_GT(ref_stats.rays_cast, 0u);
    for (const SimdLevel level : levels) {
      util::set_simd_level(level);
      for (const bool pooled : {false, true}) {
        for (const bool skip : {false, true}) {
          RaycastOptions opts;
          opts.empty_skip = skip;
          opts.pool = pooled ? &pool : nullptr;
          const auto [fb, st] = render_volume(grids[gi], opts);
          const std::string what = "grid " + std::to_string(gi) + " level " +
                                   std::string(util::simd_level_name(level)) +
                                   (pooled ? " pooled" : " serial") +
                                   (skip ? " skip" : " brute");
          expect_identical(reference, fb, what);
          // Shaded-sample and ray counts are part of the contract: they
          // feed the rays/s cost model, so they must not drift with the
          // packet width or the thread count.
          EXPECT_EQ(st.volume_samples, ref_stats.volume_samples) << what;
          EXPECT_EQ(st.rays_cast, ref_stats.rays_cast) << what;
        }
      }
    }
  }
}

// --- frustum-culled render lists --------------------------------------------

SceneTree mixed_scene() {
  SceneTree tree;
  scene::MeshData ball = mesh::make_uv_sphere(0.7f, 20, 12);
  ball.base_color = {0.8f, 0.2f, 0.2f};
  tree.add_child(scene::kRootNode, "ball", std::move(ball),
                 util::Mat4::translate({-0.6f, 0.0f, 0.0f}));
  scene::MeshData slab = mesh::make_box({1.0f, 0.7f, 0.05f}, 1);
  slab.base_color = {0.2f, 0.4f, 0.9f};
  tree.add_child(scene::kRootNode, "slab", std::move(slab),
                 util::Mat4::translate({0.4f, 0.1f, -0.6f}));
  scene::PointCloudData cloud;
  cloud.point_size = 3.0f;
  for (int i = 0; i < 120; ++i) {
    const float t = static_cast<float>(i) * 0.051f;
    cloud.positions.push_back(
        {1.4f * std::sin(t * 7.0f), 1.4f * std::cos(t * 5.0f), 0.9f * std::sin(t * 3.0f)});
  }
  tree.add_child(scene::kRootNode, "cloud", std::move(cloud));
  tree.add_child(scene::kRootNode, "volume", ball_grid(16, {0.0f, 0.3f, 0.2f}, 0.6f),
                 util::Mat4::translate({1.1f, -0.2f, 0.3f}));
  // A far-flung satellite pair that most cameras cull.
  scene::MeshData moon = mesh::make_uv_sphere(0.4f, 12, 8);
  tree.add_child(scene::kRootNode, "moon", std::move(moon),
                 util::Mat4::translate({9.0f, 7.0f, -6.0f}));
  tree.add_child(scene::kRootNode, "far-volume", ball_grid(12), util::Mat4::translate({-8, 6, 5}));
  return tree;
}

void render_via_list(Rasterizer& raster, const SceneTree& tree, const Camera& cam, bool cull,
                     RenderStats* volume_stats = nullptr) {
  const float aspect = static_cast<float>(raster.framebuffer().width()) /
                       static_cast<float>(raster.framebuffer().height());
  render::RenderListOptions lo;
  lo.frustum_cull = cull;
  const render::RenderList list = render::build_render_list(tree, cam, aspect, lo);
  raster.clear();
  raster.draw_list(list, cam, {});
  const RenderStats vs = render::raycast_list(raster.framebuffer(), list, cam, {});
  if (volume_stats != nullptr) *volume_stats = vs;
}

TEST(RenderListCull, CulledMatchesUnculledForRandomCameras) {
  const SceneTree tree = mixed_scene();
  std::mt19937 rng(99);
  std::uniform_real_distribution<float> angle(0.0f, 6.28318f);
  std::uniform_real_distribution<float> dist(3.0f, 7.0f);
  std::uniform_real_distribution<float> jitter(-0.5f, 0.5f);
  bool culled_something = false;
  for (int trial = 0; trial < 8; ++trial) {
    Camera cam;
    const float yaw = angle(rng);
    const float pitch = jitter(rng);
    const float r = dist(rng);
    cam.eye = {r * std::sin(yaw), r * pitch, r * std::cos(yaw)};
    cam.target = {jitter(rng), jitter(rng), jitter(rng)};
    Rasterizer culled(128, 96), unculled(128, 96);
    render_via_list(culled, tree, cam, /*cull=*/true);
    render_via_list(unculled, tree, cam, /*cull=*/false);
    expect_identical(culled.framebuffer(), unculled.framebuffer(),
                     "trial " + std::to_string(trial));
    if (culled.stats().nodes_culled > 0) culled_something = true;
  }
  EXPECT_TRUE(culled_something) << "no camera culled anything; the property is vacuous";
}

TEST(RenderListCull, DrawListMatchesDrawTree) {
  const SceneTree tree = mixed_scene();
  const Camera cam = front_camera();
  Rasterizer via_tree(160, 120), via_list(160, 120);
  via_tree.clear();
  via_tree.draw_tree(tree, cam, {});
  render::raycast_tree_volumes(via_tree.framebuffer(), tree, cam);

  render_via_list(via_list, tree, cam, /*cull=*/true);
  expect_identical(via_tree.framebuffer(), via_list.framebuffer(), "draw_tree vs draw_list");
}

TEST(RenderListCull, OutOfFrustumVolumeCastsNoRays) {
  SceneTree tree;
  tree.add_child(scene::kRootNode, "behind", ball_grid(16),
                 util::Mat4::translate({0, 0, 50}));  // behind the eye at z=4
  const Camera cam = front_camera();
  const render::RenderList list = render::build_render_list(tree, cam, 4.0f / 3.0f, {});
  EXPECT_TRUE(list.volumes.empty());
  EXPECT_EQ(list.nodes_culled, 1u);

  FrameBuffer fb(64, 48);
  fb.clear({0, 0, 0});
  const RenderStats st = render::raycast_list(fb, list, cam, {});
  EXPECT_EQ(st.rays_cast, 0u);
}

// --- depth semantics ---------------------------------------------------------

TEST(RaycastDepth, ThinVolumeOccludesGeometryDrawnAfter) {
  // A thin, unsaturated volume (never reaches the opacity cutoff) must
  // still write depth once its accumulated alpha is visible, so geometry
  // rasterized afterwards composites *behind* it instead of punching
  // through.
  VoxelGridData thin = ball_grid(16);
  thin.opacity_scale = 0.4f;  // visible but far below the 0.97 cutoff
  const Camera cam = front_camera();

  Rasterizer raster(96, 72);
  raster.clear();
  const RenderStats st =
      render::raycast_volume(raster.framebuffer(), thin, util::Mat4::identity(), cam, {});
  ASSERT_GT(st.volume_samples, 0u);
  const int cx = 48, cy = 36;
  ASSERT_LT(raster.framebuffer().depth_at(cx, cy), 1.0f)
      << "thin volume wrote no depth at the centre";
  const std::vector<uint8_t> before = raster.framebuffer().color();

  // A frame-filling slab well behind the ball (z=-5 vs the ball around the
  // origin).
  scene::MeshData slab = mesh::make_box({12.0f, 12.0f, 0.05f}, 1);
  slab.base_color = {0.0f, 1.0f, 0.0f};
  raster.draw_mesh(slab, util::Mat4::translate({0, 0, -5}), cam, {});

  const std::vector<uint8_t>& after = raster.framebuffer().color();
  const size_t centre = (static_cast<size_t>(cy) * 96 + cx) * 3;
  EXPECT_EQ(before[centre], after[centre]) << "slab punched through the thin volume";
  EXPECT_EQ(before[centre + 1], after[centre + 1]);
  EXPECT_EQ(before[centre + 2], after[centre + 2]);
  // Control: away from the volume (left edge, mid-height) the slab did
  // rasterize.
  const size_t edge = (static_cast<size_t>(cy) * 96 + 4) * 3;
  EXPECT_NE(before[edge + 1], after[edge + 1]) << "slab rendered nowhere — vacuous test";
}

// --- rays/s cost model --------------------------------------------------------

TEST(CostModel, WorkUnitsPreferMeasuredRayWork) {
  core::NodeCost cost;
  cost.node = 7;
  cost.voxels = 1'000'000;
  EXPECT_DOUBLE_EQ(cost.work_units(), 0.01 * 1e6);  // static fallback
  cost.measured_rays = 40'000;
  cost.ray_work = 90'000.0;
  EXPECT_DOUBLE_EQ(cost.work_units(), 90'000.0);  // measured model wins
}

TEST(CostModel, MigrationExplainShowsRaysPerSecModel) {
  core::ServiceLoadView view;
  view.subscriber_id = 3;
  view.capacity.polygons_per_sec = 1e6;
  view.capacity.rays_per_sec = 1e5;  // the measured marcher rate
  core::NodeCost vol;
  vol.node = 42;
  vol.voxels = 500'000;
  vol.measured_rays = 30'000;
  vol.ray_work = static_cast<double>(vol.measured_rays) *
                 (view.capacity.polygons_per_sec / view.capacity.rays_per_sec);
  view.assigned.push_back(vol);

  core::MigrationExplain explain;
  core::plan_migration({view}, {.target_fps = 15.0}, &explain);
  const std::string summary = explain.summary();
  EXPECT_NE(summary.find("(rays/s model)"), std::string::npos) << summary;
  EXPECT_NE(summary.find("volume node 42"), std::string::npos) << summary;
  EXPECT_NE(summary.find("30000 rays"), std::string::npos) << summary;
}

TEST(CostModel, LoadReportCarriesRayMeasurements) {
  core::LoadReportMsg m;
  m.session = "demo";
  m.fps = 24.5;
  m.frame_seconds = 0.041;
  m.assigned_triangles = 1234;
  m.volume_rays = 56789;
  m.volume_seconds = 0.0123;
  m.node_rays = {{7, 1000}, {42, 55789}};

  const auto decoded = core::decode_load_report(core::encode(m));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().session, m.session);
  EXPECT_DOUBLE_EQ(decoded.value().fps, m.fps);
  EXPECT_EQ(decoded.value().assigned_triangles, m.assigned_triangles);
  EXPECT_EQ(decoded.value().volume_rays, m.volume_rays);
  EXPECT_DOUBLE_EQ(decoded.value().volume_seconds, m.volume_seconds);
  EXPECT_EQ(decoded.value().node_rays, m.node_rays);
}

}  // namespace
}  // namespace rave

// Reactor transport tests: endpoint parsing, zero-copy buffers, the epoll
// engine's rich receive errors, and — the point of the bounded write
// queues — a slow or never-reading peer shedding per policy instead of
// stalling the publisher thread.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "net/buffer.hpp"
#include "net/channel.hpp"
#include "net/endpoint.hpp"
#include "net/fanout.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"

namespace rave::net {
namespace {

// ---------------------------------------------------------------- endpoint --

TEST(Endpoint, ParsesTcpAndRoundTrips) {
  auto ep = Endpoint::parse("tcp:127.0.0.1:9000");
  ASSERT_TRUE(ep.ok()) << ep.error();
  EXPECT_EQ(ep.value().scheme, Endpoint::Scheme::Tcp);
  EXPECT_EQ(ep.value().host, "127.0.0.1");
  EXPECT_EQ(ep.value().port, 9000);
  EXPECT_EQ(ep.value().to_string(), "tcp:127.0.0.1:9000");
  EXPECT_EQ(ep.value(), Endpoint::tcp("127.0.0.1", 9000));
}

TEST(Endpoint, ParsesInProcAndRoundTrips) {
  auto ep = Endpoint::parse("inproc:tower/render0");
  ASSERT_TRUE(ep.ok()) << ep.error();
  EXPECT_EQ(ep.value().scheme, Endpoint::Scheme::InProc);
  EXPECT_EQ(ep.value().name, "tower/render0");
  EXPECT_EQ(ep.value().to_string(), "inproc:tower/render0");
}

TEST(Endpoint, ErrorsCarryTheOffendingString) {
  for (const char* bad : {"", "tcp:", "tcp:127.0.0.1", "tcp:host:notaport", "tcp:host:0",
                          "tcp:host:70000", "http://x", "inproc:"}) {
    auto ep = Endpoint::parse(bad);
    EXPECT_FALSE(ep.ok()) << "accepted: " << bad;
  }
  auto ep = Endpoint::parse("tcp:10.0.0.1:nope");
  ASSERT_FALSE(ep.ok());
  EXPECT_NE(ep.error().find("tcp:10.0.0.1:nope"), std::string::npos) << ep.error();
}

// ------------------------------------------------------------------ buffer --

TEST(Buffer, TakeAdoptsWithoutCopying) {
  const uint64_t before = Buffer::copy_count();
  std::vector<uint8_t> bytes(1024, 0xAB);
  const uint8_t* raw = bytes.data();
  Buffer buffer = Buffer::take(std::move(bytes));
  Buffer alias = buffer;  // refcount bump, not a copy
  EXPECT_EQ(buffer.data(), raw);
  EXPECT_EQ(alias.data(), raw);
  EXPECT_EQ(alias.size(), 1024u);
  EXPECT_EQ(Buffer::copy_count(), before);
}

TEST(Buffer, MaterializeIsACountedCopy) {
  Message msg(7, {1, 2, 3}, Buffer::take({4, 5, 6, 7}));
  EXPECT_EQ(msg.payload_size(), 7u);
  EXPECT_EQ(msg.wire_size(), 13u);  // 6-byte frame header + 7 payload bytes
  const uint64_t copies = Buffer::copy_count();
  const uint64_t bytes = Buffer::copied_bytes();
  msg.materialize();
  EXPECT_EQ(msg.payload, (std::vector<uint8_t>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(msg.tail.empty());
  EXPECT_EQ(Buffer::copy_count(), copies + 1);
  EXPECT_EQ(Buffer::copied_bytes(), bytes + 4);
}

TEST(Buffer, InProcDeliveryMaterializesTheTail) {
  auto [a, b] = make_channel_pair();
  ASSERT_TRUE(a->send(Message(9, {1, 2}, Buffer::take({3, 4, 5}))).ok());
  auto msg = b->try_receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(msg->tail.empty());
}

// ------------------------------------------------------------- raw harness --

// A plain kernel socket peer the reactor talks to: accepts one connection
// and then reads only when the test says so. Small buffers make kernel
// backpressure reachable with modest payloads.
struct RawPeer {
  int listen_fd = -1;
  int conn_fd = -1;
  uint16_t port = 0;

  void start() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(listen_fd, 4), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port = ntohs(addr.sin_port);
  }

  void accept_one() {
    conn_fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn_fd, 0);
  }

  std::vector<uint8_t> read_exactly(size_t n) {
    std::vector<uint8_t> out(n);
    size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(conn_fd, out.data() + off, n - off, 0);
      if (r <= 0) break;
      off += static_cast<size_t>(r);
    }
    out.resize(off);
    return out;
  }

  // Drain and discard until EOF (frees a wedged sender).
  void drain_all() {
    uint8_t sink[65536];
    while (::recv(conn_fd, sink, sizeof(sink), 0) > 0) {
    }
  }

  ~RawPeer() {
    if (conn_fd >= 0) ::close(conn_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

// Connect a reactor channel to `port` with a deliberately small kernel
// send buffer, so write-queue backpressure engages within a few hundred
// kilobytes instead of megabytes.
ChannelPtr reactor_connect(uint16_t port, const ReactorChannelOptions& opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int small = 32 * 1024;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return Reactor::global().adopt(fd, opts);
}

// --------------------------------------------------------------- reactor ----

TEST(Reactor, EchoAndTraceRoundTripOverEventLoop) {
  std::mutex mu;
  std::condition_variable cv;
  ChannelPtr server;
  auto listener = Reactor::global().listen(0, [&](ChannelPtr accepted) {
    std::lock_guard lock(mu);
    server = std::move(accepted);
    cv.notify_all();
  });
  ASSERT_TRUE(listener.ok()) << listener.error();

  // tcp_connect honors RAVE_NET, so under the legacy lane this exercises a
  // legacy client against a reactor server — the wire format must agree.
  auto dialed = tcp_connect("127.0.0.1", listener.value()->port());
  ChannelPtr client = dialed.ok() ? std::move(dialed).take() : nullptr;
  ASSERT_NE(client, nullptr);
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return server != nullptr; }));
  }

  Message out(0x0133, {1, 2, 3}, Buffer::take({4, 5}));
  out.trace_id = 0xDEADBEEF;
  out.span_id = 77;
  ASSERT_TRUE(client->send(std::move(out)).ok());

  auto got = server->receive_result(5.0);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value().type, 0x0133);
  EXPECT_EQ(got.value().payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(got.value().trace_id, 0xDEADBEEFu);
  EXPECT_EQ(got.value().span_id, 77u);

  ASSERT_TRUE(server->send(Message(0x0101, {9})).ok());
  auto reply = client->receive_result(5.0);
  ASSERT_TRUE(reply.ok()) << reply.error();
  EXPECT_EQ(reply.value().type, 0x0101);

  client->close();
  server->close();
}

TEST(Reactor, ReceiveErrorsDistinguishTimeoutFromPeerClose) {
  std::mutex mu;
  std::condition_variable cv;
  ChannelPtr server;
  auto listener = Reactor::global().listen(0, [&](ChannelPtr accepted) {
    std::lock_guard lock(mu);
    server = std::move(accepted);
    cv.notify_all();
  });
  ASSERT_TRUE(listener.ok()) << listener.error();
  ChannelPtr client = reactor_connect(listener.value()->port(), {});
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return server != nullptr; }));
  }

  auto nothing = client->receive_result(0.02);
  ASSERT_FALSE(nothing.ok());
  EXPECT_NE(nothing.error().find("timed out"), std::string::npos) << nothing.error();

  server->close();
  auto closed = client->receive_result(5.0);
  ASSERT_FALSE(closed.ok());
  EXPECT_NE(closed.error().find("closed by peer"), std::string::npos) << closed.error();
  EXPECT_FALSE(client->send(Message(1, {1})).ok());
  client->close();
}

TEST(Reactor, WireBytesIdenticalToLegacyFraming) {
  RawPeer peer;
  peer.start();
  ChannelPtr client = reactor_connect(peer.port, {});
  peer.accept_one();

  // Untraced frame with a tail: 4-byte LE length (payload+tail), 2-byte
  // LE type, then the bytes — indistinguishable from the legacy engine.
  ASSERT_TRUE(client->send(Message(0x0142, {10, 11}, Buffer::take({12, 13, 14}))).ok());
  const std::vector<uint8_t> expected = {5, 0, 0, 0, 0x42, 0x01, 10, 11, 12, 13, 14};
  EXPECT_EQ(peer.read_exactly(expected.size()), expected);
  client->close();
}

TEST(Reactor, HlcStampedWireBytesMatchSpec) {
  RawPeer peer;
  peer.start();
  ChannelPtr client = reactor_connect(peer.port, {});
  peer.accept_one();

  // Stamped frame: length excludes headers, the type carries the 0x4000
  // flag, then wall micros (u64 LE) + logical (u32 LE) before the payload.
  Message msg(0x0142, {10, 11});
  msg.hlc_wall = 0x0102030405060708ull;
  msg.hlc_logical = 0x0A0B0C0Du;
  ASSERT_TRUE(client->send(std::move(msg)).ok());
  const std::vector<uint8_t> expected = {2,    0,    0,    0,           // length
                                         0x42, 0x41,                    // type | 0x4000
                                         8,    7,    6,    5, 4, 3, 2, 1,  // wall LE
                                         0x0D, 0x0C, 0x0B, 0x0A,        // logical LE
                                         10,   11};
  EXPECT_EQ(peer.read_exactly(expected.size()), expected);
  client->close();
}

TEST(Reactor, TraceAndHlcCoexistOverEventLoop) {
  std::mutex mu;
  std::condition_variable cv;
  ChannelPtr server;
  auto listener = Reactor::global().listen(0, [&](ChannelPtr accepted) {
    std::lock_guard lock(mu);
    server = std::move(accepted);
    cv.notify_all();
  });
  ASSERT_TRUE(listener.ok()) << listener.error();
  // tcp_connect honors RAVE_NET: under the legacy lane this sends a
  // trace+HLC header from the legacy engine to a reactor server — both
  // optional headers must agree across engines, in order (trace, HLC).
  auto dialed = tcp_connect("127.0.0.1", listener.value()->port());
  ChannelPtr client = dialed.ok() ? std::move(dialed).take() : nullptr;
  ASSERT_NE(client, nullptr);
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return server != nullptr; }));
  }

  Message out(0x0133, {1, 2, 3}, Buffer::take({4, 5}));
  out.trace_id = 0xDEADBEEF;
  out.span_id = 77;
  out.hlc_wall = 123'456'789;
  out.hlc_logical = 6;
  ASSERT_TRUE(client->send(std::move(out)).ok());

  auto got = server->receive_result(5.0);
  ASSERT_TRUE(got.ok()) << got.error();
  EXPECT_EQ(got.value().type, 0x0133);
  EXPECT_EQ(got.value().payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(got.value().trace_id, 0xDEADBEEFu);
  EXPECT_EQ(got.value().span_id, 77u);
  EXPECT_EQ(got.value().hlc_wall, 123'456'789u);
  EXPECT_EQ(got.value().hlc_logical, 6u);
  client->close();
  server->close();
}

TEST(Reactor, ZeroCopiesFromEncodeToSocket) {
  RawPeer peer;
  peer.start();
  ChannelPtr client = reactor_connect(peer.port, {});
  peer.accept_one();

  std::vector<uint8_t> encoded(64 * 1024);
  std::iota(encoded.begin(), encoded.end(), 0);
  Buffer tail = Buffer::take(std::move(encoded));  // adopt: not a copy

  const uint64_t copies_before = Buffer::copy_count();
  Message msg(0x0133, {1, 2, 3, 4}, tail);
  ASSERT_TRUE(client->send(std::move(msg)).ok());
  auto wire = peer.read_exactly(6 + 4 + tail.size());
  ASSERT_EQ(wire.size(), 6 + 4 + tail.size());
  EXPECT_TRUE(std::equal(tail.data(), tail.data() + tail.size(), wire.begin() + 10));
  // The acceptance hook: between handing the encoded block to the Message
  // and the kernel seeing it, zero byte duplications happened.
  EXPECT_EQ(Buffer::copy_count(), copies_before);
  client->close();
}

TEST(Reactor, StalledPeerShedsNewestWithoutBlockingPublisher) {
  RawPeer peer;
  peer.start();
  ReactorChannelOptions opts;
  opts.write_queue_limit = 4;
  opts.shed_policy = ShedPolicy::DropNewest;
  ChannelPtr client = reactor_connect(peer.port, opts);
  peer.accept_one();  // accepted but never read: kernel buffers fill

  auto& reg = obs::MetricsRegistry::global();
  const double shed_before = static_cast<double>(reg.counter("rave_net_sends_shed_total").value());

  const auto start = std::chrono::steady_clock::now();
  size_t refused = 0;
  for (int i = 0; i < 24; ++i)
    if (!client->send(Message(1, std::vector<uint8_t>(128 * 1024))).ok()) ++refused;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // 3 MiB against a ~300 KiB kernel pipe and a 4-frame queue: most sends
  // must shed, and none may stall the caller.
  EXPECT_GT(refused, 0u);
  EXPECT_EQ(client->stats().messages_shed, refused);
  EXPECT_LT(elapsed, 2.0) << "publisher thread blocked on a stalled subscriber";
  EXPECT_GE(static_cast<double>(reg.counter("rave_net_sends_shed_total").value()),
            shed_before + static_cast<double>(refused));
  EXPECT_TRUE(client->is_open());

  // The stall is the subscriber's problem, not the session's: once the
  // peer drains, the same channel delivers again. Retry while the loop
  // thread flushes the backlog into the newly-draining socket.
  std::thread drainer([&] { peer.drain_all(); });
  bool delivered = false;
  for (int i = 0; i < 500 && !delivered; ++i) {
    delivered = client->send(Message(2, {42})).ok();
    if (!delivered) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(delivered);
  client->close();  // linger: flush queued frames, then FIN → drain_all sees EOF
  drainer.join();
}

TEST(Reactor, DropOldestPrefersFreshFrames) {
  RawPeer peer;
  peer.start();
  ReactorChannelOptions opts;
  opts.write_queue_limit = 2;
  opts.shed_policy = ShedPolicy::DropOldest;
  ChannelPtr client = reactor_connect(peer.port, opts);
  peer.accept_one();

  size_t accepted = 0;
  for (int i = 0; i < 16; ++i)
    if (client->send(Message(1, std::vector<uint8_t>(128 * 1024))).ok()) ++accepted;
  // Evicting the oldest makes room for the new frame: sends keep
  // succeeding even though the queue stays bounded.
  EXPECT_GT(accepted, 12u);
  EXPECT_GT(client->stats().messages_shed, 0u);

  std::thread drainer([&] { peer.drain_all(); });
  client->close();
  drainer.join();
}

TEST(Reactor, BlockPolicyWaitsAndCloseUnblocks) {
  RawPeer peer;
  peer.start();
  ReactorChannelOptions opts;
  opts.write_queue_limit = 1;
  opts.shed_policy = ShedPolicy::Block;
  ChannelPtr client = reactor_connect(peer.port, opts);
  peer.accept_one();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread sender([&] {
    for (int i = 0; i < 16; ++i)
      if (!client->send(Message(1, std::vector<uint8_t>(128 * 1024))).ok()) ++failures;
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(done.load()) << "Block policy did not block against a stalled peer";
  client->close();  // unblocks the waiting send with a channel-closed error
  sender.join();
  EXPECT_TRUE(done.load());
  EXPECT_GT(failures.load(), 0);
  peer.drain_all();
}

TEST(Reactor, WriteQueueDepthGaugeReturnsToBaseline) {
  auto& gauge = obs::MetricsRegistry::global().gauge("rave_net_write_queue_depth");
  const double before = gauge.value();
  RawPeer peer;
  peer.start();
  ReactorChannelOptions opts;
  opts.write_queue_limit = 64;
  opts.shed_policy = ShedPolicy::DropNewest;
  ChannelPtr client = reactor_connect(peer.port, opts);
  peer.accept_one();
  for (int i = 0; i < 8; ++i) (void)client->send(Message(1, std::vector<uint8_t>(64 * 1024)));
  std::thread drainer([&] { peer.drain_all(); });
  client->close();  // flush + retire drops any remaining queue entries
  drainer.join();
  for (int i = 0; i < 100 && gauge.value() != before; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_DOUBLE_EQ(gauge.value(), before);
}

TEST(Reactor, PerChannelStatsAttributeQueueResidency) {
  RawPeer peer;
  peer.start();
  ReactorChannelOptions opts;
  opts.write_queue_limit = 64;
  opts.shed_policy = ShedPolicy::DropNewest;
  ChannelPtr client = reactor_connect(peer.port, opts);
  peer.accept_one();  // accepted but not yet reading: frames queue up

  auto& hist = obs::MetricsRegistry::global().histogram("rave_net_queue_wait_seconds");
  const uint64_t observed_before = hist.count();

  // 8 × 64 KiB against a 32 KiB kernel buffer: after the first frame the
  // socket is full, so the rest must sit in the user-space queue together.
  for (int i = 0; i < 8; ++i) (void)client->send(Message(1, std::vector<uint8_t>(64 * 1024)));
  EXPECT_GE(client->stats().queue_peak_depth, 2u);

  // Let the peer drain; every flushed frame adds its enqueue→sendmsg wait
  // to this channel's attribution (and the process-wide histogram).
  std::thread drainer([&] { peer.drain_all(); });
  double waited = 0;
  for (int i = 0; i < 500 && waited == 0; ++i) {
    waited = client->stats().queue_wait_seconds;
    if (waited == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(waited, 0.0) << "no queue wait attributed to the stalled channel";
  EXPECT_GT(hist.count(), observed_before);
  client->close();
  drainer.join();
}

TEST(Reactor, FanoutHubSharesOneTailAcrossSubscribers) {
  RawPeer peer_a;
  RawPeer peer_b;
  peer_a.start();
  peer_b.start();
  ChannelPtr sub_a = reactor_connect(peer_a.port, {});
  ChannelPtr sub_b = reactor_connect(peer_b.port, {});
  peer_a.accept_one();
  peer_b.accept_one();

  FanoutHub hub;
  hub.subscribe(sub_a);
  hub.subscribe(sub_b);

  Buffer tail = Buffer::take(std::vector<uint8_t>(32 * 1024, 0xCD));
  const uint64_t copies_before = Buffer::copy_count();
  EXPECT_EQ(hub.publish(Message(0x0133, {1}, tail)), 2u);
  // One encode, two subscribers, zero duplications of the encoded bytes.
  EXPECT_EQ(Buffer::copy_count(), copies_before);
  EXPECT_EQ(peer_a.read_exactly(6 + 1 + tail.size()).size(), 6 + 1 + tail.size());
  EXPECT_EQ(peer_b.read_exactly(6 + 1 + tail.size()).size(), 6 + 1 + tail.size());
  sub_a->close();
  sub_b->close();
}

// ---------------------------------------------------------------- fanout ----

TEST(FanoutRelay, CountsUpstreamForwardFailures) {
  auto [relay_end, publisher_end] = make_channel_pair();
  FanoutRelay relay(relay_end);
  auto [sub_hub_end, sub_client_end] = make_channel_pair();
  relay.hub().subscribe(sub_hub_end);

  // A healthy upstream forwards cleanly.
  ASSERT_TRUE(sub_client_end->send(Message(0x0135, {1})).ok());
  relay.pump();
  EXPECT_EQ(relay.stats().requests_forwarded, 1u);
  EXPECT_EQ(relay.stats().upstream_errors, 0u);
  EXPECT_TRUE(publisher_end->try_receive().has_value());

  // Kill the upstream: the forward now fails, and the failure is counted
  // instead of vanishing into (void).
  const uint64_t counter_before =
      obs::MetricsRegistry::global().counter("rave_relay_upstream_errors_total").value();
  publisher_end->close();
  ASSERT_TRUE(sub_client_end->send(Message(0x0135, {2})).ok());
  relay.pump();
  EXPECT_EQ(relay.stats().requests_forwarded, 2u);
  EXPECT_EQ(relay.stats().upstream_errors, 1u);
  EXPECT_EQ(obs::MetricsRegistry::global().counter("rave_relay_upstream_errors_total").value(),
            counter_before + 1);
}

}  // namespace
}  // namespace rave::net

// Rasterizer, compositor and ray-caster tests — the distributed-rendering
// substrate. Determinism and tile alignment are what make the paper's
// tile/subset compositing correct, so they are tested bit-exactly.
#include <gtest/gtest.h>

#include "mesh/primitives.hpp"
#include "render/compositor.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "render/raycast.hpp"
#include "scene/camera.hpp"

namespace rave::render {
namespace {

using mesh::make_box;
using mesh::make_uv_sphere;
using scene::Camera;
using scene::SceneTree;
using util::Vec3;

SceneTree sphere_scene(const Vec3& color = {0.8f, 0.2f, 0.2f}) {
  SceneTree tree;
  scene::MeshData ball = make_uv_sphere(1.0f, 24, 16);
  ball.base_color = color;
  tree.add_child(scene::kRootNode, "ball", std::move(ball));
  return tree;
}

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  return cam;
}

TEST(Framebuffer, ClearSetsColorAndDepth) {
  FrameBuffer fb(8, 8);
  fb.set_pixel(3, 3, 10, 20, 30);
  fb.set_depth(3, 3, 0.5f);
  fb.clear({1.0f, 0.0f, 0.0f});
  EXPECT_EQ(fb.pixel(3, 3)[0], 255);
  EXPECT_EQ(fb.pixel(3, 3)[1], 0);
  EXPECT_FLOAT_EQ(fb.depth_at(3, 3), 1.0f);
}

TEST(Framebuffer, ExtractInsertRoundTrip) {
  FrameBuffer fb(16, 16);
  fb.clear({0, 0, 0});
  fb.set_pixel(5, 6, 100, 110, 120);
  fb.set_depth(5, 6, 0.25f);
  const Tile tile{4, 4, 8, 8};
  const FrameBuffer sub = fb.extract(tile);
  EXPECT_EQ(sub.pixel(1, 2)[0], 100);
  EXPECT_FLOAT_EQ(sub.depth_at(1, 2), 0.25f);

  FrameBuffer other(16, 16);
  other.clear({0, 0, 0});
  other.insert(tile, sub);
  EXPECT_EQ(other.pixel(5, 6)[2], 120);
  EXPECT_FLOAT_EQ(other.depth_at(5, 6), 0.25f);
}

TEST(Framebuffer, SerializeRoundTrip) {
  FrameBuffer fb(7, 5);
  fb.clear({0.2f, 0.4f, 0.6f});
  fb.set_depth(3, 2, 0.125f);
  auto back = FrameBuffer::deserialize(fb.serialize());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().width(), 7);
  EXPECT_EQ(back.value().color(), fb.color());
  EXPECT_EQ(back.value().depth(), fb.depth());
}

TEST(Framebuffer, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3};
  EXPECT_FALSE(FrameBuffer::deserialize(garbage).ok());
}

TEST(Tiles, SplitCoversFrameExactly) {
  for (int count : {1, 2, 3, 4, 5, 7, 8, 16}) {
    const auto tiles = split_tiles(640, 480, count);
    ASSERT_EQ(static_cast<int>(tiles.size()), count) << count;
    uint64_t area = 0;
    for (const Tile& t : tiles) {
      EXPECT_GE(t.x, 0);
      EXPECT_GE(t.y, 0);
      EXPECT_LE(t.right(), 640);
      EXPECT_LE(t.bottom(), 480);
      area += t.pixel_count();
    }
    EXPECT_EQ(area, 640ull * 480ull) << count;  // no gaps, no overlap by area
  }
}

TEST(Tiles, WeightedSplitProportionalRows) {
  const auto tiles = split_tiles_weighted(100, 100, {3.0, 1.0});
  ASSERT_EQ(tiles.size(), 2u);
  EXPECT_EQ(tiles[0].height, 75);
  EXPECT_EQ(tiles[1].height, 25);
  EXPECT_EQ(tiles[1].y, 75);
}

TEST(Rasterizer, DrawsSphereInCenter) {
  const SceneTree tree = sphere_scene();
  RenderStats stats;
  const FrameBuffer fb = render_tree(tree, front_camera(), 64, 64, {}, &stats);
  EXPECT_GT(stats.triangles_rasterized, 100u);
  EXPECT_GT(stats.pixels_shaded, 100u);
  // Center pixel is the lit sphere, corner is background.
  EXPECT_LT(fb.depth_at(32, 32), 1.0f);
  EXPECT_FLOAT_EQ(fb.depth_at(1, 1), 1.0f);
  EXPECT_GT(fb.pixel(32, 32)[0], fb.pixel(1, 1)[0]);
}

TEST(Rasterizer, DepthTestOrdersSurfaces) {
  SceneTree tree;
  scene::MeshData near_quad = make_box({0.5f, 0.5f, 0.01f}, 1);
  near_quad.base_color = {1, 0, 0};
  tree.add_child(scene::kRootNode, "near", std::move(near_quad),
                 util::Mat4::translate({0, 0, 1.0f}));
  scene::MeshData far_quad = make_box({1.5f, 1.5f, 0.01f}, 1);
  far_quad.base_color = {0, 0, 1};
  tree.add_child(scene::kRootNode, "far", std::move(far_quad),
                 util::Mat4::translate({0, 0, -1.0f}));
  const FrameBuffer fb = render_tree(tree, front_camera(), 64, 64);
  // Center: red (near) wins regardless of draw order; edge: blue far quad.
  EXPECT_GT(fb.pixel(32, 32)[0], fb.pixel(32, 32)[2]);
  EXPECT_GT(fb.pixel(8, 32)[2], fb.pixel(8, 32)[0]);
}

TEST(Rasterizer, DeterministicAcrossRuns) {
  const SceneTree tree = sphere_scene();
  const FrameBuffer a = render_tree(tree, front_camera(), 96, 96);
  const FrameBuffer b = render_tree(tree, front_camera(), 96, 96);
  EXPECT_EQ(a.color(), b.color());
  EXPECT_EQ(a.depth(), b.depth());
}

TEST(Rasterizer, TilesMatchFullFrameExactly) {
  // The paper's tile distribution relies on tiles from different services
  // aligning exactly ("the framebuffer aligns exactly", §3.1.2).
  const SceneTree tree = sphere_scene();
  const Camera cam = front_camera();
  const FrameBuffer full = render_tree(tree, cam, 80, 60);

  FrameBuffer assembled(80, 60);
  for (const Tile& tile : split_tiles(80, 60, 4)) {
    RenderOptions opts;
    opts.region = tile;
    Rasterizer raster(80, 60);
    raster.clear(opts);
    raster.draw_tree(tree, cam, opts);
    assembled.insert(tile, raster.framebuffer().extract(tile));
  }
  EXPECT_EQ(assembled.color(), full.color());
  EXPECT_EQ(assembled.depth(), full.depth());
}

TEST(Rasterizer, NearPlaneClippingKeepsPartialTriangles) {
  // A mesh straddling the near plane must not vanish or crash.
  SceneTree tree;
  scene::MeshData slab = make_box({0.2f, 0.2f, 6.0f}, 1);
  tree.add_child(scene::kRootNode, "slab", std::move(slab));
  Camera cam;
  cam.eye = {0, 0, 2};  // inside the slab extent
  cam.target = {0, 0, -10};
  RenderStats stats;
  const FrameBuffer fb = render_tree(tree, cam, 48, 48, {}, &stats);
  EXPECT_GT(stats.triangles_rasterized, 0u);
  EXPECT_LT(fb.depth_at(24, 24), 1.0f);
}

TEST(Rasterizer, PointSplatsRender) {
  SceneTree tree;
  scene::PointCloudData cloud;
  cloud.positions = {{0, 0, 0}};
  cloud.base_color = {0, 1, 0};
  cloud.point_size = 5.0f;
  tree.add_child(scene::kRootNode, "pts", std::move(cloud));
  const FrameBuffer fb = render_tree(tree, front_camera(), 64, 64);
  EXPECT_GT(fb.pixel(32, 32)[1], 128);
  EXPECT_LT(fb.depth_at(32, 32), 1.0f);
}

TEST(Compositor, DepthCompositeTakesNearest) {
  FrameBuffer a(4, 4), b(4, 4);
  a.clear({0, 0, 0});
  b.clear({0, 0, 0});
  a.set_pixel(1, 1, 255, 0, 0);
  a.set_depth(1, 1, 0.5f);
  b.set_pixel(1, 1, 0, 255, 0);
  b.set_depth(1, 1, 0.3f);  // nearer
  ASSERT_TRUE(depth_composite(a, b).ok());
  EXPECT_EQ(a.pixel(1, 1)[1], 255);
  EXPECT_FLOAT_EQ(a.depth_at(1, 1), 0.3f);
  // size mismatch refused
  FrameBuffer small(2, 2);
  EXPECT_FALSE(depth_composite(a, small).ok());
}

TEST(Compositor, SubsetCompositingEqualsMonolithicRender) {
  // Dataset distribution (§3.2.5): two services each render half the scene
  // full-frame; depth compositing must reproduce the single-service image.
  SceneTree full;
  scene::MeshData left = make_uv_sphere(0.7f, 20, 14);
  left.base_color = {1, 0, 0};
  scene::MeshData right = make_uv_sphere(0.7f, 20, 14);
  right.base_color = {0, 0, 1};
  full.add_child(scene::kRootNode, "left", left, util::Mat4::translate({-0.5f, 0, 0.3f}));
  full.add_child(scene::kRootNode, "right", right, util::Mat4::translate({0.5f, 0, -0.3f}));

  SceneTree only_left;
  only_left.bump_next_id(10);
  only_left.add_child(scene::kRootNode, "left", left, util::Mat4::translate({-0.5f, 0, 0.3f}));
  SceneTree only_right;
  only_right.bump_next_id(20);
  only_right.add_child(scene::kRootNode, "right", right, util::Mat4::translate({0.5f, 0, -0.3f}));

  const Camera cam = front_camera();
  const FrameBuffer reference = render_tree(full, cam, 72, 72);
  FrameBuffer composite = render_tree(only_left, cam, 72, 72);
  const FrameBuffer other = render_tree(only_right, cam, 72, 72);
  ASSERT_TRUE(depth_composite(composite, other).ok());
  EXPECT_EQ(composite.color(), reference.color());
}

TEST(Compositor, AssembleTilesChecksSizes) {
  FrameBuffer target(8, 8);
  std::vector<TileResult> tiles;
  tiles.push_back({Tile{0, 0, 4, 4}, FrameBuffer(4, 4)});
  EXPECT_TRUE(assemble_tiles(target, tiles).ok());
  tiles.push_back({Tile{4, 0, 4, 4}, FrameBuffer(2, 2)});
  EXPECT_FALSE(assemble_tiles(target, tiles).ok());
}

TEST(Compositor, OrderedBlendBackToFront) {
  Image base(1, 1);
  base.set_pixel(0, 0, 0, 0, 0);
  BlendLayer far_layer{Image(1, 1), {1.0f}, 10.0f};
  far_layer.color.set_pixel(0, 0, 200, 0, 0);
  BlendLayer near_layer{Image(1, 1), {0.5f}, 5.0f};
  near_layer.color.set_pixel(0, 0, 0, 200, 0);
  ASSERT_TRUE(blend_ordered(base, {near_layer, far_layer}).ok());
  // Far (red) first, then half-transparent green over it.
  EXPECT_EQ(base.rgb[0], 100);
  EXPECT_EQ(base.rgb[1], 100);
}

TEST(Raycast, VolumeVisibleAndOccludedByGeometry) {
  scene::VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 16;
  grid.origin = {-1, -1, -1};
  grid.spacing = {0.125f, 0.125f, 0.125f};
  grid.values.assign(grid.voxel_count(), 1.0f);
  grid.iso_low = 0.1f;
  grid.opacity_scale = 4.0f;

  SceneTree tree;
  tree.add_child(scene::kRootNode, "vol", grid);
  FrameBuffer fb(48, 48);
  fb.clear({0, 0, 0});
  raycast_tree_volumes(fb, tree, front_camera());
  EXPECT_GT(static_cast<int>(fb.pixel(24, 24)[0]) + fb.pixel(24, 24)[1] + fb.pixel(24, 24)[2],
            60);

  // Opaque geometry in front hides the volume.
  SceneTree with_wall = tree;
  scene::MeshData wall = make_box({2.0f, 2.0f, 0.01f}, 1);
  wall.base_color = {0, 0, 0};
  with_wall.add_child(scene::kRootNode, "wall", std::move(wall),
                      util::Mat4::translate({0, 0, 2.0f}));
  FrameBuffer occluded = render_tree(with_wall, front_camera(), 48, 48);
  const auto before = occluded.pixel(24, 24)[0];
  raycast_tree_volumes(occluded, with_wall, front_camera());
  EXPECT_EQ(occluded.pixel(24, 24)[0], before);  // wall unchanged
}

TEST(Ppm, WriteReadRoundTrip) {
  Image img(3, 2);
  img.set_pixel(0, 0, 1, 2, 3);
  img.set_pixel(2, 1, 250, 251, 252);
  const std::string path = testing::TempDir() + "/rave_test.ppm";
  ASSERT_TRUE(write_ppm(img, path).ok());
  auto back = read_ppm(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().rgb, img.rgb);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rave::render

// RenderService unit tests: error paths, stats accounting, active-client
// restrictions, mixed-payload (mesh + points + volume) distribution — the
// §6 "voxel and point based methods ... will distribute across multiple
// render services".
#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "mesh/fields.hpp"
#include "mesh/primitives.hpp"
#include "scene/volume.hpp"

namespace rave::core {
namespace {

using scene::kRootNode;
using scene::SceneTree;

TEST(RenderServiceUnit, ErrorsOnUnknownSessions) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  RenderService render(clock, fabric);
  scene::Camera cam;
  EXPECT_FALSE(render.render_console("nope", cam, 32, 32).ok());
  EXPECT_FALSE(render.render_distributed("nope", cam, 32, 32).ok());
  EXPECT_FALSE(render.enable_tile_assist("nope", {}).ok());
  EXPECT_FALSE(render.request_tile_assist("nope", 1).ok());
  EXPECT_FALSE(render.submit_update("nope", scene::SceneUpdate::remove_node(5)).ok());
  EXPECT_EQ(render.replica("nope"), nullptr);
  EXPECT_FALSE(render.bootstrapped("nope"));
}

TEST(RenderServiceUnit, ActiveClientHasNoPeerEndpointOrAdvert) {
  util::SimClock clock;
  InProcFabric fabric(clock);
  RenderService::Options options;
  options.active_client_only = true;
  RenderService active(clock, fabric, options);
  EXPECT_FALSE(active.listen_peer("x/peer").ok());
  services::UddiRegistry registry;
  EXPECT_FALSE(active.advertise(registry, "inproc:x/soap").ok());
  EXPECT_TRUE(registry.all_businesses().empty());
}

TEST(RenderServiceUnit, DoubleJoinSameSessionRefused) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  SceneTree tree;
  tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.5f, 8, 6));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
  EXPECT_FALSE(grid.render_service("laptop")->connect_session(
                   grid.data_access_point("datahost"), "demo").ok());
}

TEST(RenderServiceUnit, StatsCountFramesAndUpdates) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  SceneTree tree;
  const scene::NodeId ball = tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.5f, 8, 6));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
  RenderService& render = *grid.render_service("laptop");

  scene::Camera cam;
  cam.eye = {0, 0, 3};
  (void)render.render_console("demo", cam, 32, 32);
  (void)render.render_console("demo", cam, 32, 32);
  EXPECT_EQ(render.stats().frames_rendered, 2u);
  EXPECT_GT(render.last_frame_seconds(), 0.0);

  ASSERT_TRUE(render
                  .submit_update("demo", scene::SceneUpdate::set_transform(
                                             ball, util::Mat4::translate({1, 0, 0})))
                  .ok());
  grid.pump_until_idle();
  EXPECT_EQ(render.stats().updates_applied, 1u);  // the committed echo
}

TEST(RenderServiceUnit, LoadReportsReachDataService) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  SceneTree tree;
  tree.add_child(kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  RenderService::Options options;
  options.simulate_timing = true;
  options.load_report_interval = 0.0;  // report every frame
  grid.add_render_service("laptop", options);
  ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());

  scene::Camera cam;
  cam.eye = {0, 0, 3};
  for (int i = 0; i < 5; ++i) {
    clock.advance(0.1);
    (void)grid.render_service("laptop")->render_console("demo", cam, 32, 32);
    grid.pump_until_idle();
  }
  const auto views = data.subscribers("demo");
  ASSERT_EQ(views.size(), 1u);
  EXPECT_GT(views[0].fps, 0.0);  // tracker fed by the wire reports
}

TEST(RenderServiceUnit, MixedPayloadDistribution) {
  // Mesh + point cloud + volume blocks packed across two services — every
  // payload kind is a distribution unit (§6).
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");

  SceneTree tree;
  tree.add_child(kRootNode, "mesh", mesh::make_uv_sphere(0.5f, 32, 24));
  scene::PointCloudData cloud;
  for (int i = 0; i < 30'000; ++i)
    cloud.positions.push_back({static_cast<float>(i % 100) * 0.01f,
                               static_cast<float>(i / 100) * 0.003f, 0.0f});
  tree.add_child(kRootNode, "points", std::move(cloud));
  scene::Aabb bounds;
  bounds.extend({-1, -1, -1});
  bounds.extend({1, 1, 1});
  const scene::NodeId vol = tree.add_child(
      kRootNode, "volume",
      mesh::rasterize_field(mesh::ball_field({0, 0, 0}, 0.8f), bounds, 16, 16, 16));
  ASSERT_TRUE(scene::explode_volume_node(tree, vol, 2, 1, 1).ok());
  ASSERT_TRUE(data.create_session("mixed", std::move(tree)).ok());

  const auto costs = payload_costs(*data.session_tree("mixed"));
  ASSERT_EQ(costs.size(), 4u);  // mesh + points + 2 volume blocks
  double total = 0;
  for (const auto& c : costs) total += c.work_units();

  // Each service holds most-but-not-all of the scene, so the pack must
  // split it (the largest single node still fits one service).
  RenderService::Options half;
  half.profile.tri_rate = total * 0.95 * 15.0;
  grid.add_render_service("a", half);
  grid.add_render_service("b", half);
  ASSERT_TRUE(grid.join("a", "datahost", "mixed").ok());
  ASSERT_TRUE(grid.join("b", "datahost", "mixed").ok());
  ASSERT_TRUE(data.distribute("mixed").ok());
  grid.pump_until_idle();

  const auto views = data.subscribers("mixed");
  ASSERT_EQ(views.size(), 2u);
  EXPECT_FALSE(views[0].interest.empty());
  EXPECT_FALSE(views[1].interest.empty());
  size_t covered = views[0].interest.size() + views[1].interest.size();
  EXPECT_EQ(covered, 4u);
}

TEST(RenderServiceUnit, ConsoleRenderSeesAllPayloadKinds) {
  util::SimClock clock;
  RaveGrid grid(clock);
  DataService& data = grid.add_data_service("datahost");
  SceneTree tree;
  tree.add_child(kRootNode, "mesh", mesh::make_uv_sphere(0.4f, 16, 12),
                 util::Mat4::translate({-0.8f, 0, 0}));
  scene::PointCloudData cloud;
  cloud.base_color = {0, 1, 0};
  cloud.point_size = 4.0f;
  for (int i = 0; i < 200; ++i)
    cloud.positions.push_back({0.8f, -0.5f + 0.005f * static_cast<float>(i), 0});
  tree.add_child(kRootNode, "points", std::move(cloud));
  scene::Aabb bounds;
  bounds.extend({-0.3f, -0.3f, -0.3f});
  bounds.extend({0.3f, 0.3f, 0.3f});
  auto grid_data = mesh::rasterize_field(mesh::ball_field({0, 0, 0}, 0.28f), bounds, 12, 12, 12);
  grid_data.opacity_scale = 4.0f;
  grid_data.iso_low = 0.05f;
  tree.add_child(kRootNode, "volume", std::move(grid_data),
                 util::Mat4::translate({0, 0.7f, 0}));
  ASSERT_TRUE(data.create_session("zoo", std::move(tree)).ok());
  grid.add_render_service("laptop");
  ASSERT_TRUE(grid.join("laptop", "datahost", "zoo").ok());

  scene::Camera cam;
  cam.eye = {0, 0, 3};
  auto frame = grid.render_service("laptop")->render_console("zoo", cam, 96, 96);
  ASSERT_TRUE(frame.ok());
  // Mesh on the left, points on the right, volume above: all present.
  EXPECT_LT(frame.value().depth_at(24, 48), 1.0f);                     // mesh
  const render::Image img = frame.value().to_image();
  bool points_lit = false;
  for (int x = 66; x < 96; ++x)
    for (int y = 0; y < 96; ++y)
      if (img.pixel(x, y)[1] > 128 && img.pixel(x, y)[0] < 100) points_lit = true;
  EXPECT_TRUE(points_lit);
  bool volume_lit = false;
  for (int x = 30; x < 66; ++x)
    for (int y = 8; y < 40; ++y) {
      const uint8_t* p = img.pixel(x, y);
      if (p[2] > 60 && frame.value().depth_at(x, y) >= 1.0f) volume_lit = true;  // translucent
      if (p[0] + p[1] + p[2] > 100) volume_lit = true;
    }
  EXPECT_TRUE(volume_lit);
}

}  // namespace
}  // namespace rave::core

// Scene-tree tests: structure, transforms, subsets, metrics, cameras.
#include <gtest/gtest.h>

#include "scene/camera.hpp"
#include "scene/node.hpp"
#include "scene/tree.hpp"

namespace rave::scene {
namespace {

MeshData small_triangle() {
  MeshData mesh;
  mesh.positions = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.indices = {0, 1, 2};
  mesh.compute_normals();
  return mesh;
}

TEST(SceneTree, StartsWithRoot) {
  SceneTree tree;
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(tree.contains(kRootNode));
  EXPECT_EQ(tree.root().name, "root");
}

TEST(SceneTree, AddFindRemove) {
  SceneTree tree;
  const NodeId group = tree.add_child(kRootNode, "group");
  const NodeId mesh = tree.add_child(group, "mesh", small_triangle());
  ASSERT_NE(mesh, kInvalidNode);
  EXPECT_EQ(tree.node_count(), 3u);
  EXPECT_EQ(tree.find(mesh)->parent, group);
  EXPECT_EQ(tree.find_by_name("mesh"), mesh);

  ASSERT_TRUE(tree.remove_node(group).ok());
  EXPECT_FALSE(tree.contains(group));
  EXPECT_FALSE(tree.contains(mesh));  // subtree removed
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(SceneTree, RefusesStructuralMistakes) {
  SceneTree tree;
  const NodeId a = tree.add_child(kRootNode, "a");
  const NodeId b = tree.add_child(a, "b");
  EXPECT_FALSE(tree.remove_node(kRootNode).ok());
  EXPECT_FALSE(tree.remove_node(9999).ok());
  EXPECT_FALSE(tree.reparent(a, b).ok());  // cycle
  EXPECT_FALSE(tree.reparent(kRootNode, a).ok());
  SceneNode dup;
  dup.id = a;
  EXPECT_FALSE(tree.add_node(kRootNode, dup).ok());  // duplicate id
}

TEST(SceneTree, ReparentMovesSubtree) {
  SceneTree tree;
  const NodeId a = tree.add_child(kRootNode, "a");
  const NodeId b = tree.add_child(kRootNode, "b");
  const NodeId child = tree.add_child(a, "child");
  ASSERT_TRUE(tree.reparent(child, b).ok());
  EXPECT_EQ(tree.find(child)->parent, b);
  EXPECT_EQ(tree.find(a)->children.size(), 0u);
  EXPECT_EQ(tree.find(b)->children.size(), 1u);
}

TEST(SceneTree, WorldTransformComposesAncestors) {
  SceneTree tree;
  const NodeId a = tree.add_child(kRootNode, "a", std::monostate{},
                                  util::Mat4::translate({1, 0, 0}));
  const NodeId b = tree.add_child(a, "b", std::monostate{}, util::Mat4::translate({0, 2, 0}));
  const util::Vec3 p = tree.world_transform(b).transform_point({0, 0, 0});
  EXPECT_EQ(p, (util::Vec3{1, 2, 0}));
}

TEST(SceneTree, TraverseVisitsDepthFirstWithWorldTransforms) {
  SceneTree tree;
  const NodeId a = tree.add_child(kRootNode, "a", std::monostate{},
                                  util::Mat4::translate({5, 0, 0}));
  tree.add_child(a, "leaf", small_triangle());
  std::vector<std::string> order;
  util::Vec3 leaf_pos;
  tree.traverse([&](const SceneNode& node, const util::Mat4& world) {
    order.push_back(node.name);
    if (node.name == "leaf") leaf_pos = world.transform_point({0, 0, 0});
  });
  EXPECT_EQ(order, (std::vector<std::string>{"root", "a", "leaf"}));
  EXPECT_EQ(leaf_pos, (util::Vec3{5, 0, 0}));
}

TEST(SceneTree, SubsetKeepsAncestorChainStripped) {
  SceneTree tree;
  const NodeId group = tree.add_child(kRootNode, "group", small_triangle());  // has payload!
  const NodeId keep = tree.add_child(group, "keep", small_triangle());
  tree.add_child(kRootNode, "drop", small_triangle());

  const SceneTree subset = tree.subset({keep});
  EXPECT_TRUE(subset.contains(keep));
  EXPECT_TRUE(subset.contains(group));  // ancestor retained for orientation
  EXPECT_EQ(subset.find_by_name("drop"), kInvalidNode);
  // The ancestor's payload is stripped to a bare group (paper §3.2.5).
  EXPECT_EQ(subset.find(group)->kind(), NodeKind::Group);
  EXPECT_EQ(subset.find(keep)->kind(), NodeKind::Mesh);
  // Ids and transforms preserved.
  EXPECT_EQ(subset.find(keep)->id, keep);
}

TEST(SceneTree, SubsetIncludesWholeSubtrees) {
  SceneTree tree;
  const NodeId group = tree.add_child(kRootNode, "group");
  const NodeId inner = tree.add_child(group, "inner", small_triangle());
  const SceneTree subset = tree.subset({group});
  EXPECT_TRUE(subset.contains(inner));
  EXPECT_EQ(subset.find(inner)->kind(), NodeKind::Mesh);
}

TEST(SceneTree, MetricsAggregate) {
  SceneTree tree;
  tree.add_child(kRootNode, "m1", small_triangle());
  tree.add_child(kRootNode, "m2", small_triangle());
  PointCloudData cloud;
  cloud.positions.resize(10);
  tree.add_child(kRootNode, "pts", std::move(cloud));
  const NodeMetrics total = tree.total_metrics();
  EXPECT_EQ(total.triangles, 2u);
  EXPECT_EQ(total.points, 10u);
}

TEST(SceneTree, PayloadNodeIdsSkipGroups) {
  SceneTree tree;
  const NodeId group = tree.add_child(kRootNode, "group");
  const NodeId mesh = tree.add_child(group, "mesh", small_triangle());
  const auto ids = tree.payload_node_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], mesh);
}

TEST(SceneTree, WorldBoundsTransformsGeometry) {
  SceneTree tree;
  tree.add_child(kRootNode, "m", small_triangle(), util::Mat4::translate({10, 0, 0}));
  const Aabb bounds = tree.world_bounds();
  EXPECT_NEAR(bounds.lo.x, 10.0f, 1e-5f);
  EXPECT_NEAR(bounds.hi.x, 11.0f, 1e-5f);
}

TEST(VoxelGrid, TrilinearSampleInterpolates) {
  VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 2;
  grid.values = {0, 1, 0, 1, 0, 1, 0, 1};  // varies along x only
  const float mid = grid.sample({1.0f, 1.0f, 1.0f});
  EXPECT_NEAR(mid, 0.5f, 1e-5f);
  EXPECT_NEAR(grid.sample({0.5f, 1.0f, 1.0f}), 0.0f, 1e-5f);
  EXPECT_NEAR(grid.sample({1.5f, 1.0f, 1.0f}), 1.0f, 1e-5f);
}

TEST(Avatar, MeshPointsAlongMinusZ) {
  AvatarData avatar;
  avatar.size = 1.0f;
  const MeshData mesh = make_avatar_mesh(avatar);
  EXPECT_GT(mesh.triangle_count(), 8u);
  // Apex at origin; body extends to +Z (base behind apex since the cone
  // points along -Z through the transform).
  const Aabb bounds = mesh.bounds();
  EXPECT_NEAR(bounds.lo.z, 0.0f, 1e-5f);
  EXPECT_GT(bounds.hi.z, 0.5f);
}

TEST(Camera, OrbitKeepsDistance) {
  Camera cam;
  cam.eye = {0, 0, 5};
  cam.target = {0, 0, 0};
  const float before = (cam.eye - cam.target).length();
  cam.orbit(0.5f, 0.3f);
  EXPECT_NEAR((cam.eye - cam.target).length(), before, 1e-4f);
  EXPECT_NE(cam.eye, (util::Vec3{0, 0, 5}));
}

TEST(Camera, FramingContainsBox) {
  Aabb box;
  box.extend({-2, -1, -3});
  box.extend({4, 5, 1});
  const Camera cam = Camera::framing(box);
  // The whole box is in front of the camera.
  const util::Mat4 view = cam.view();
  for (int i = 0; i < 8; ++i) {
    const util::Vec3 corner{(i & 1) ? box.hi.x : box.lo.x, (i & 2) ? box.hi.y : box.lo.y,
                            (i & 4) ? box.hi.z : box.lo.z};
    EXPECT_LT(view.transform_point(corner).z, 0.0f);
  }
}

TEST(Camera, AvatarTransformPlacesConeAtEye) {
  Camera cam;
  cam.eye = {3, 1, 4};
  cam.target = {0, 0, 0};
  const util::Mat4 m = cam.avatar_transform();
  EXPECT_EQ(m.transform_point({0, 0, 0}), cam.eye);
  // -Z of the avatar frame points towards the target.
  const util::Vec3 dir = m.transform_dir({0, 0, -1});
  const util::Vec3 expected = util::normalize(cam.target - cam.eye);
  EXPECT_NEAR(dir.x, expected.x, 1e-4f);
  EXPECT_NEAR(dir.y, expected.y, 1e-4f);
  EXPECT_NEAR(dir.z, expected.z, 1e-4f);
}

}  // namespace
}  // namespace rave::scene

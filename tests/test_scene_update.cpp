// Update, serialization and audit-trail tests — the collaboration and
// persistence substrate (paper §3.1.1, §3.2.4).
#include <gtest/gtest.h>

#include <cstdio>

#include "scene/audit.hpp"
#include "scene/serialize.hpp"
#include "scene/update.hpp"

namespace rave::scene {
namespace {

MeshData tri() {
  MeshData mesh;
  mesh.positions = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.indices = {0, 1, 2};
  mesh.compute_normals();
  return mesh;
}

SceneNode make_node(NodeId id, const std::string& name, NodePayload payload = std::monostate{}) {
  SceneNode node;
  node.id = id;
  node.name = name;
  node.payload = std::move(payload);
  return node;
}

TEST(SceneUpdate, ApplyAddRemove) {
  SceneTree tree;
  const NodeId id = tree.allocate_id();
  ASSERT_TRUE(SceneUpdate::add_node(kRootNode, make_node(id, "n", tri())).apply(tree).ok());
  EXPECT_TRUE(tree.contains(id));
  ASSERT_TRUE(SceneUpdate::remove_node(id).apply(tree).ok());
  EXPECT_FALSE(tree.contains(id));
}

TEST(SceneUpdate, ApplySetTransformAndName) {
  SceneTree tree;
  const NodeId id = tree.add_child(kRootNode, "n");
  ASSERT_TRUE(SceneUpdate::set_transform(id, util::Mat4::translate({1, 2, 3})).apply(tree).ok());
  EXPECT_EQ(tree.find(id)->transform.transform_point({0, 0, 0}), (util::Vec3{1, 2, 3}));
  ASSERT_TRUE(SceneUpdate::set_name(id, "renamed").apply(tree).ok());
  EXPECT_EQ(tree.find(id)->name, "renamed");
}

TEST(SceneUpdate, ApplyToMissingNodeFails) {
  SceneTree tree;
  EXPECT_FALSE(SceneUpdate::remove_node(777).apply(tree).ok());
  EXPECT_FALSE(SceneUpdate::set_transform(777, util::Mat4::identity()).apply(tree).ok());
}

TEST(SceneUpdate, SerializationRoundTripAllKinds) {
  SceneTree scratch;
  std::vector<SceneUpdate> updates;
  updates.push_back(SceneUpdate::add_node(kRootNode, make_node(10, "mesh", tri())));
  updates.push_back(SceneUpdate::remove_node(10));
  updates.push_back(SceneUpdate::set_transform(4, util::Mat4::translate({1, 1, 1})));
  updates.push_back(SceneUpdate::set_payload(5, tri()));
  updates.push_back(SceneUpdate::set_name(6, "renamed"));
  updates.push_back(SceneUpdate::reparent(7, 8));
  for (SceneUpdate& u : updates) {
    u.sequence = 42;
    u.author = 7;
    u.timestamp = 1.25;
    util::ByteWriter w;
    write_update(w, u);
    util::ByteReader r(w.data());
    auto back = read_update(r);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back.value().kind, u.kind);
    EXPECT_EQ(back.value().sequence, 42u);
    EXPECT_EQ(back.value().author, 7u);
    EXPECT_EQ(back.value().node, u.node);
    EXPECT_EQ(back.value().parent, u.parent);
  }
}

TEST(Serialize, PayloadRoundTripMesh) {
  MeshData mesh = tri();
  mesh.colors = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  util::ByteWriter w;
  write_payload(w, NodePayload{mesh});
  util::ByteReader r(w.data());
  auto back = read_payload(r);
  ASSERT_TRUE(back.ok());
  const auto* out = std::get_if<MeshData>(&back.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->positions.size(), 3u);
  EXPECT_EQ(out->colors.size(), 3u);
  EXPECT_EQ(out->indices, mesh.indices);
}

TEST(Serialize, PayloadRoundTripVoxelsAndPoints) {
  VoxelGridData grid;
  grid.nx = grid.ny = grid.nz = 2;
  grid.values = {0, 1, 2, 3, 4, 5, 6, 7};
  grid.opacity_scale = 2.5f;
  util::ByteWriter w;
  write_payload(w, NodePayload{grid});
  PointCloudData cloud;
  cloud.positions = {{1, 2, 3}};
  cloud.point_size = 4.0f;
  write_payload(w, NodePayload{cloud});
  util::ByteReader r(w.data());
  auto vox = read_payload(r);
  ASSERT_TRUE(vox.ok());
  EXPECT_EQ(std::get<VoxelGridData>(vox.value()).values[5], 5.0f);
  auto pts = read_payload(r);
  ASSERT_TRUE(pts.ok());
  EXPECT_FLOAT_EQ(std::get<PointCloudData>(pts.value()).point_size, 4.0f);
}

TEST(Serialize, TreeRoundTripPreservesStructureAndIds) {
  SceneTree tree;
  const NodeId group = tree.add_child(kRootNode, "group", std::monostate{},
                                      util::Mat4::translate({1, 0, 0}));
  const NodeId mesh = tree.add_child(group, "mesh", tri());
  AvatarData avatar;
  avatar.user_name = "alice";
  const NodeId av = tree.add_child(kRootNode, "avatar", avatar);

  const std::vector<uint8_t> bytes = serialize_tree(tree);
  auto back = deserialize_tree(bytes);
  ASSERT_TRUE(back.ok()) << back.error();
  const SceneTree& copy = back.value();
  EXPECT_EQ(copy.node_count(), tree.node_count());
  EXPECT_TRUE(copy.contains(group));
  EXPECT_TRUE(copy.contains(mesh));
  EXPECT_EQ(copy.find(mesh)->parent, group);
  EXPECT_EQ(std::get<AvatarData>(copy.find(av)->payload).user_name, "alice");
  // Id allocation continues above the highest seen id.
  EXPECT_GT(copy.peek_next_id(), av);
}

TEST(Serialize, MarshalStatsCountPerVertexFields) {
  SceneTree tree;
  tree.add_child(kRootNode, "mesh", tri());
  MarshalStats stats;
  (void)serialize_tree(tree, &stats);
  // 3 positions + 3 normals + 3 indices + header fields — introspection
  // touches every per-vertex field (Table 5's cost driver).
  EXPECT_GE(stats.fields, 9u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(Serialize, RejectsCorruptTree) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(deserialize_tree(garbage).ok());
}

TEST(AuditTrail, RecordsAndReplays) {
  SceneTree tree;
  AuditTrail trail(tree);

  SceneUpdate add = SceneUpdate::add_node(kRootNode, make_node(2, "obj", tri()));
  add.timestamp = 1.0;
  ASSERT_TRUE(add.apply(tree).ok());
  trail.append(add);

  SceneUpdate move = SceneUpdate::set_transform(2, util::Mat4::translate({3, 0, 0}));
  move.timestamp = 2.0;
  ASSERT_TRUE(move.apply(tree).ok());
  trail.append(move);

  SessionPlayer player(trail);
  ASSERT_TRUE(player.valid());
  EXPECT_EQ(player.play_all(), 2u);
  EXPECT_TRUE(player.tree().contains(2));
  EXPECT_EQ(player.tree().find(2)->transform.transform_point({0, 0, 0}), (util::Vec3{3, 0, 0}));
}

TEST(AuditTrail, ScrubByTimestamp) {
  SceneTree tree;
  AuditTrail trail(tree);
  for (int i = 0; i < 5; ++i) {
    SceneUpdate add = SceneUpdate::add_node(
        kRootNode, make_node(static_cast<NodeId>(10 + i), "n" + std::to_string(i)));
    add.timestamp = static_cast<double>(i);
    trail.append(add);
  }
  SessionPlayer player(trail);
  EXPECT_EQ(player.step_until(2.5), 3u);  // t=0,1,2
  EXPECT_EQ(player.tree().node_count(), 4u);
  EXPECT_DOUBLE_EQ(player.next_timestamp(), 3.0);
  EXPECT_EQ(player.play_all(), 2u);
  EXPECT_TRUE(player.finished());
}

TEST(AuditTrail, SaveLoadRoundTrip) {
  SceneTree tree;
  tree.add_child(kRootNode, "base", tri());
  AuditTrail trail(tree);
  SceneUpdate update = SceneUpdate::set_name(kRootNode, "renamed-root");
  update.timestamp = 5.0;
  trail.append(update);

  const std::string path = testing::TempDir() + "/rave_audit_test.bin";
  ASSERT_TRUE(trail.save(path).ok());
  auto loaded = AuditTrail::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().size(), 1u);
  SessionPlayer player(loaded.value());
  player.play_all();
  EXPECT_EQ(player.tree().root().name, "renamed-root");
  std::remove(path.c_str());
}

TEST(AuditTrail, AsynchronousCollaborationAppends) {
  // User A records a session; user B later replays it and appends — the
  // paper's asynchronous collaboration story (§3.1.1).
  SceneTree tree;
  AuditTrail trail(tree);
  SceneUpdate a_change = SceneUpdate::add_node(kRootNode, make_node(2, "a-object", tri()));
  a_change.author = 1;
  a_change.timestamp = 1.0;
  trail.append(a_change);

  SessionPlayer player(trail);
  player.play_all();
  SceneTree resumed = player.tree();
  AuditTrail extended = trail;
  SceneUpdate b_change = SceneUpdate::add_node(kRootNode, make_node(3, "b-object", tri()));
  b_change.author = 2;
  b_change.timestamp = 100.0;
  ASSERT_TRUE(b_change.apply(resumed).ok());
  extended.append(b_change);

  SessionPlayer replay(extended);
  replay.play_all();
  EXPECT_TRUE(replay.tree().contains(2));
  EXPECT_TRUE(replay.tree().contains(3));
}

}  // namespace
}  // namespace rave::scene

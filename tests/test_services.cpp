// Grid-services substrate tests: XML, SOAP envelopes, WSDL technical
// models, the UDDI registry and the service container/proxy pair.
#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "services/container.hpp"
#include "services/registry.hpp"
#include "services/soap.hpp"
#include "services/wsdl.hpp"
#include "services/xml.hpp"

namespace rave::services {
namespace {

TEST(Xml, WriteParseRoundTrip) {
  XmlNode root("doc");
  root.attributes["version"] = "1.0";
  XmlNode& child = root.add_child("item");
  child.attributes["name"] = "a<b&c";
  child.text = "text with \"quotes\" & <angles>";
  root.add_child("empty");

  auto parsed = parse_xml(to_xml(root));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().name, "doc");
  EXPECT_EQ(parsed.value().attribute("version"), "1.0");
  const XmlNode* item = parsed.value().find_child("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->attribute("name"), "a<b&c");
  EXPECT_EQ(item->text, "text with \"quotes\" & <angles>");
  EXPECT_NE(parsed.value().find_child("empty"), nullptr);
}

TEST(Xml, ParserHandlesPrologCommentsSelfClosing) {
  const std::string doc =
      "<?xml version=\"1.0\"?>\n<!-- comment -->\n"
      "<root><a/><!-- inner --><b x='1'/></root>";
  auto parsed = parse_xml(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().children.size(), 2u);
  EXPECT_EQ(parsed.value().children[1].attribute("x"), "1");
}

TEST(Xml, ParserRejectsMalformed) {
  EXPECT_FALSE(parse_xml("<a><b></a></b>").ok());
  EXPECT_FALSE(parse_xml("<a").ok());
  EXPECT_FALSE(parse_xml("just text").ok());
  EXPECT_FALSE(parse_xml("<a x=1></a>").ok());  // unquoted attribute
}

TEST(Xml, FieldCountCountsIntrospectedFields) {
  XmlNode root("a");
  root.attributes["k"] = "v";
  root.add_child("b").text = "t";
  // a(1) + attr(1) + b(1) + text(1)
  EXPECT_EQ(root.field_count(), 4u);
}

TEST(Soap, ValueRoundTripAllTypes) {
  SoapStruct st;
  st["int"] = int64_t{-42};
  st["double"] = 3.5;
  st["string"] = "hello";
  st["bool"] = true;
  st["bytes"] = std::vector<uint8_t>{1, 2, 255};
  st["list"] = SoapList{SoapValue{1}, SoapValue{"two"}};
  const SoapValue value{st};

  auto back = SoapValue::from_xml(value.to_xml());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().field("int").as_int(), -42);
  EXPECT_DOUBLE_EQ(back.value().field("double").as_double(), 3.5);
  EXPECT_EQ(back.value().field("string").as_string(), "hello");
  EXPECT_TRUE(back.value().field("bool").as_bool());
  EXPECT_EQ(back.value().field("bytes").as_bytes(), (std::vector<uint8_t>{1, 2, 255}));
  const SoapValue list_value = back.value().field("list");
  ASSERT_NE(list_value.as_list(), nullptr);
  EXPECT_EQ(list_value.as_list()->size(), 2u);
}

TEST(Soap, CallEnvelopeRoundTrip) {
  SoapCall call;
  call.service = "render";
  call.method = "createInstance";
  call.call_id = 99;
  call.args = {SoapValue{"inproc:host/data"}, SoapValue{"Skull"}};
  auto back = decode_call(encode_call(call));
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().service, "render");
  EXPECT_EQ(back.value().method, "createInstance");
  EXPECT_EQ(back.value().call_id, 99u);
  ASSERT_EQ(back.value().args.size(), 2u);
  EXPECT_EQ(back.value().args[1].as_string(), "Skull");
}

TEST(Soap, FaultRoundTrip) {
  SoapResponse fault;
  fault.call_id = 7;
  fault.is_fault = true;
  fault.fault_message = "no such session";
  auto back = decode_response(encode_response(fault));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().is_fault);
  EXPECT_EQ(back.value().fault_message, "no such session");
  EXPECT_EQ(back.value().call_id, 7u);
}

TEST(Soap, BinaryPayloadSurvivesBase64) {
  std::vector<uint8_t> pixels(301);
  for (size_t i = 0; i < pixels.size(); ++i) pixels[i] = static_cast<uint8_t>(i * 13);
  SoapResponse response;
  response.result = SoapValue{pixels};
  auto back = decode_response(encode_response(response));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().result.as_bytes(), pixels);
}

TEST(Wsdl, RoundTripAndSignature) {
  const ServiceDescriptor original = render_service_descriptor();
  auto parsed = parse_wsdl(to_wsdl(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().name, original.name);
  EXPECT_EQ(parsed.value().operations.size(), original.operations.size());
  EXPECT_EQ(api_signature(parsed.value()), api_signature(original));
}

TEST(Wsdl, SignatureIgnoresOperationOrder) {
  ServiceDescriptor a;
  a.name = "S";
  a.operations = {{"foo", {"xsd:int"}, "xsd:string"}, {"bar", {}, "xsd:int"}};
  ServiceDescriptor b = a;
  std::swap(b.operations[0], b.operations[1]);
  EXPECT_EQ(api_signature(a), api_signature(b));
}

TEST(Wsdl, DifferentApisDiffer) {
  EXPECT_NE(api_signature(data_service_descriptor()),
            api_signature(render_service_descriptor()));
}

TEST(Uddi, RegisterAndFind) {
  UddiRegistry registry;
  const std::string tmodel = registry.register_tmodel(render_service_descriptor());
  const std::string business = registry.register_business("tower");
  auto service = registry.register_service(business, "render:Skull-internal");
  ASSERT_TRUE(service.ok()) << service.error();
  auto binding =
      registry.register_binding(service.value(), "inproc:tower/soap", tmodel, "Skull-internal");
  ASSERT_TRUE(binding.ok()) << binding.error();

  const auto found = registry.find_business("tow");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "tower");
  ASSERT_EQ(found[0].services.size(), 1u);
  EXPECT_EQ(found[0].services[0].bindings[0].access_point, "inproc:tower/soap");

  const auto points = registry.access_points(tmodel);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].instance_info, "Skull-internal");
}

TEST(Uddi, TModelRegistrationIsIdempotentBySignature) {
  UddiRegistry registry;
  const std::string k1 = registry.register_tmodel(render_service_descriptor());
  const std::string k2 = registry.register_tmodel(render_service_descriptor());
  EXPECT_EQ(k1, k2);
  const std::string k3 = registry.register_tmodel(data_service_descriptor());
  EXPECT_NE(k1, k3);
}

TEST(Uddi, BindingRequiresKnownTModelAndService) {
  UddiRegistry registry;
  EXPECT_FALSE(registry.register_binding("nope", "ap", "uddi:tmodel:1").ok());
  const std::string tmodel = registry.register_tmodel(data_service_descriptor());
  EXPECT_FALSE(registry.register_binding("nope", "ap", tmodel).ok());
}

TEST(Uddi, RemoveBindingHidesAccessPoint) {
  UddiRegistry registry;
  const std::string tmodel = registry.register_tmodel(render_service_descriptor());
  const std::string business = registry.register_business("host");
  auto service = registry.register_service(business, "render");
  ASSERT_TRUE(service.ok()) << service.error();
  const auto binding = registry.register_binding(service.value(), "ap1", tmodel);
  ASSERT_TRUE(binding.ok());
  EXPECT_TRUE(registry.remove_binding(binding.value()).ok());
  EXPECT_TRUE(registry.access_points(tmodel).empty());
  // Removing it twice is an explanatory error, not a silent no-op.
  const auto again = registry.remove_binding(binding.value());
  EXPECT_FALSE(again.ok());
  EXPECT_NE(again.error().find("unknown binding"), std::string::npos);
}

TEST(Uddi, SoapDispatchSurface) {
  UddiRegistry registry;
  const std::string tmodel = registry.register_tmodel(render_service_descriptor());
  auto business = registry.dispatch("registerBusiness", {SoapValue{"adrenochrome"}});
  ASSERT_TRUE(business.ok());
  auto service = registry.dispatch("registerService",
                                   {business.value(), SoapValue{"render:Skull"}});
  ASSERT_TRUE(service.ok());
  auto binding = registry.dispatch(
      "registerBinding", {service.value(), SoapValue{"inproc:a/soap"}, SoapValue{tmodel},
                          SoapValue{"Skull"}});
  ASSERT_TRUE(binding.ok()) << binding.error();
  auto points = registry.dispatch("accessPoints", {SoapValue{tmodel}});
  ASSERT_TRUE(points.ok());
  ASSERT_NE(points.value().as_list(), nullptr);
  EXPECT_EQ(points.value().as_list()->size(), 1u);
  EXPECT_FALSE(registry.dispatch("noSuchMethod", {}).ok());
}

TEST(Container, DispatchAndFaults) {
  ServiceContainer container;
  container.register_method("math", "add", [](const SoapList& args) -> util::Result<SoapValue> {
    return SoapValue{args[0].as_int() + args[1].as_int()};
  });
  SoapCall call;
  call.service = "math";
  call.method = "add";
  call.args = {SoapValue{2}, SoapValue{3}};
  EXPECT_EQ(container.dispatch(call).result.as_int(), 5);

  call.method = "subtract";
  EXPECT_TRUE(container.dispatch(call).is_fault);
  EXPECT_EQ(container.stats().calls_served, 2u);
  EXPECT_EQ(container.stats().faults, 1u);
}

TEST(Container, ProxyOverChannelPump) {
  ServiceContainer container;
  container.register_method("echo", "shout",
                            [](const SoapList& args) -> util::Result<SoapValue> {
                              return SoapValue{args[0].as_string() + "!"};
                            });
  auto [client_end, server_end] = net::make_channel_pair();
  container.bind_channel(server_end);
  ServiceProxy proxy(client_end, "echo");

  // Deterministic single-threaded call: send, pump, then read the reply.
  SoapCall call;
  call.service = "echo";
  call.method = "shout";
  call.call_id = 1;
  call.args = {SoapValue{"hello"}};
  const std::string xml = encode_call(call);
  ASSERT_TRUE(client_end->send({kSoapRequestType,
                                std::vector<uint8_t>(xml.begin(), xml.end())}).ok());
  EXPECT_EQ(container.pump(), 1u);
  auto reply = client_end->try_receive();
  ASSERT_TRUE(reply.has_value());
  auto response = decode_response(std::string(reply->payload.begin(), reply->payload.end()));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().result.as_string(), "hello!");
}

TEST(Container, ThreadedProxyCall) {
  ServiceContainer container;
  container.register_method("echo", "twice",
                            [](const SoapList& args) -> util::Result<SoapValue> {
                              return SoapValue{args[0].as_int() * 2};
                            });
  auto [client_end, server_end] = net::make_channel_pair();
  container.bind_channel(server_end);
  container.start();
  ServiceProxy proxy(client_end, "echo");
  auto result = proxy.call("twice", {SoapValue{21}}, 2.0);
  container.stop();
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().as_int(), 42);
}

TEST(Container, ProxySurfacesFaults) {
  ServiceContainer container;
  auto [client_end, server_end] = net::make_channel_pair();
  container.bind_channel(server_end);
  container.start();
  ServiceProxy proxy(client_end, "ghost");
  auto result = proxy.call("anything", {}, 1.0);
  container.stop();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("no such operation"), std::string::npos);
}

}  // namespace
}  // namespace rave::services

// Performance-model tests: the machine profiles must reproduce the
// *shape* of the paper's published numbers (who is faster, by roughly what
// factor, where crossovers fall) — the core of the Tables 2-5 harness.
#include <gtest/gtest.h>

#include "net/simlink.hpp"
#include "sim/machine.hpp"
#include "sim/perf_model.hpp"

namespace rave::sim {
namespace {

constexpr uint64_t kElleTris = 50'000;
constexpr uint64_t kGalleonTris = 5'500;
constexpr uint64_t k400 = 400 * 400;
constexpr uint64_t k200 = 200 * 200;

TEST(Machines, TestbedHasPaperHosts) {
  const auto hosts = testbed();
  ASSERT_EQ(hosts.size(), 6u);
  EXPECT_EQ(profile_by_name("zaurus").tri_rate, 0);
  EXPECT_FALSE(profile_by_name("zaurus").has_renderer());
  EXPECT_TRUE(profile_by_name("laptop").has_renderer());
}

TEST(PerfModel, OnscreenScalesWithTriangles) {
  const MachineProfile m = centrino_laptop();
  EXPECT_GT(onscreen_seconds(m, 1'000'000, k200), onscreen_seconds(m, 10'000, k200));
  EXPECT_GT(onscreen_seconds(m, 10'000, k400), onscreen_seconds(m, 10'000, k200));
}

TEST(PerfModel, OffscreenIsSlowerThanOnscreen) {
  for (const MachineProfile& m : {centrino_laptop(), athlon_desktop(), v880z()}) {
    EXPECT_GT(offscreen_sequential_seconds(m, kElleTris, k400),
              onscreen_seconds(m, kElleTris, k400))
        << m.name;
  }
}

// Table 3: off-screen as a percentage of on-screen speed at 400x400.
struct Table3Row {
  const char* dataset;
  uint64_t triangles;
  double geforce_go_pct;   // paper: Elle 35, Galleon 9
  double geforce_gts_pct;  // paper: Elle 40, Galleon 9
  double xvr_pct;          // paper: Elle 3, Galleon 16
};

class Table3Test : public testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, OffscreenPercentInBand) {
  const Table3Row& row = GetParam();
  const auto pct = [&](const MachineProfile& m) {
    return 100.0 * onscreen_seconds(m, row.triangles, k400) /
           offscreen_sequential_seconds(m, row.triangles, k400);
  };
  // Within a factor of ~2 of the published percentage — the shape, not the
  // absolute fit.
  EXPECT_GT(pct(centrino_laptop()), row.geforce_go_pct * 0.5);
  EXPECT_LT(pct(centrino_laptop()), row.geforce_go_pct * 2.0);
  EXPECT_GT(pct(athlon_desktop()), row.geforce_gts_pct * 0.5);
  EXPECT_LT(pct(athlon_desktop()), row.geforce_gts_pct * 2.0);
  EXPECT_GT(pct(v880z()), row.xvr_pct * 0.3);
  EXPECT_LT(pct(v880z()), row.xvr_pct * 2.5);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table3Test,
                         testing::Values(Table3Row{"Elle", kElleTris, 35, 40, 3},
                                         Table3Row{"Galleon", kGalleonTris, 9, 9, 16}),
                         [](const auto& info) { return info.param.dataset; });

TEST(Table3Shape, XvrOffscreenCollapsesOnBigScenes) {
  // The paper's surprising row: the fast XVR-4000 falls to 3% off-screen
  // on Elle (software fallback) while the laptops hold 35-40%.
  const auto pct = [&](const MachineProfile& m) {
    return 100.0 * onscreen_seconds(m, kElleTris, k400) /
           offscreen_sequential_seconds(m, kElleTris, k400);
  };
  EXPECT_LT(pct(v880z()), pct(centrino_laptop()) / 3.0);
  EXPECT_LT(pct(v880z()), 10.0);
}

TEST(Table4Shape, InterleavingRecoversThroughputOnLinuxBoxes) {
  // Paper Table 4 (200x200, 4 images): 420 Go seq 55% → int 90%;
  // GTS seq 51% → int 90%; XVR barely moves (3% → 4%).
  for (const MachineProfile& m : {centrino_laptop(), athlon_desktop()}) {
    const OffscreenBatch batch = offscreen_batch(m, kElleTris, k200, 4);
    EXPECT_GT(batch.sequential_percent(), 30.0) << m.name;
    EXPECT_LT(batch.sequential_percent(), 75.0) << m.name;
    EXPECT_GT(batch.interleaved_percent(), 70.0) << m.name;
    EXPECT_GT(batch.interleaved_percent(), batch.sequential_percent() * 1.3) << m.name;
  }
  const OffscreenBatch sun = offscreen_batch(v880z(), kElleTris, k200, 4);
  EXPECT_LT(sun.interleaved_percent(), 12.0);
  EXPECT_LT(sun.interleaved_percent() - sun.sequential_percent(), 5.0);
}

TEST(Table4Shape, GalleonBenefitsLessFromInterleavingThanElle) {
  // Small scenes stay overhead-dominated: Galleon int ~33-48% vs Elle ~90%.
  const OffscreenBatch galleon = offscreen_batch(centrino_laptop(), kGalleonTris, k200, 4);
  const OffscreenBatch elle = offscreen_batch(centrino_laptop(), kElleTris, k200, 4);
  EXPECT_LT(galleon.interleaved_percent(), elle.interleaved_percent());
}

TEST(Table2Shape, PdaFrameBreakdownMatchesPaper) {
  // Paper Table 2: hand 2.9 fps (latency 0.339 s: receipt 0.201, render
  // 0.091, other 0.047); skeleton 1.6 fps (0.598: 0.194/0.355/0.049).
  const MachineProfile server = centrino_laptop();
  const MachineProfile pda = zaurus_pda();
  const net::LinkProfile wireless = net::wireless_11mbit();

  const ThinClientFrame hand = thin_client_frame(server, pda, wireless, 830'000, 200, 200);
  EXPECT_NEAR(hand.transfer_seconds, 0.20, 0.06);
  EXPECT_NEAR(hand.render_seconds, 0.091, 0.04);
  EXPECT_NEAR(hand.client_seconds, 0.047, 0.02);
  EXPECT_NEAR(hand.fps(), 2.9, 1.0);

  const ThinClientFrame skeleton =
      thin_client_frame(server, pda, wireless, 2'800'000, 200, 200);
  EXPECT_NEAR(skeleton.render_seconds, 0.355, 0.12);
  EXPECT_NEAR(skeleton.fps(), 1.6, 0.6);
  EXPECT_LT(skeleton.fps(), hand.fps());
}

TEST(Table2Shape, VgaFrameDropsBelowOneFps) {
  // Paper §5.1: "for a 640x480 ... image (920Kb in size), this would
  // result in around 0.6 frames per second".
  const ThinClientFrame vga = thin_client_frame(centrino_laptop(), zaurus_pda(),
                                                net::wireless_11mbit(), 830'000, 640, 480);
  EXPECT_LT(vga.fps(), 1.0);
  EXPECT_GT(vga.fps(), 0.3);
}

TEST(Table2Shape, CompressionRaisesFps) {
  const ThinClientFrame raw = thin_client_frame(centrino_laptop(), zaurus_pda(),
                                                net::wireless_11mbit(), 100'000, 200, 200);
  const ThinClientFrame compressed = thin_client_frame(
      centrino_laptop(), zaurus_pda(), net::wireless_11mbit(), 100'000, 200, 200, 30'000);
  EXPECT_GT(compressed.fps(), raw.fps() * 1.5);
}

TEST(Table5Shape, UddiScanAndBootstrapTimings) {
  // Paper Table 5: scan 0.70-0.73 s; full bootstrap 4.2-4.8 s.
  const UddiTiming timing = uddi_timing(centrino_laptop(), 4);
  EXPECT_NEAR(timing.scan_seconds, 0.72, 0.3);
  EXPECT_NEAR(timing.full_bootstrap, 4.5, 1.5);
  EXPECT_GT(timing.full_bootstrap, timing.scan_seconds * 4);
}

TEST(Table5Shape, ServiceBootstrapScalesWithSceneSize) {
  // Paper Table 5: Galleon (0.3 MB) 10.5 s vs hand (20 MB) 68.2 s — the
  // marshalling of per-field scene data dominates.
  const net::LinkProfile ethernet = net::ethernet_100mbit();
  // Field counts ~ what serialize_tree reports: positions+normals+indices.
  const uint64_t galleon_fields = 22'000;
  const uint64_t hand_fields = 3'300'000;
  const double galleon = service_bootstrap_seconds(centrino_laptop(), centrino_laptop(),
                                                   ethernet, galleon_fields, 300'000);
  const double hand = service_bootstrap_seconds(centrino_laptop(), centrino_laptop(), ethernet,
                                                hand_fields, 20'000'000);
  EXPECT_NEAR(galleon, 10.5, 4.0);
  EXPECT_NEAR(hand, 68.2, 20.0);
  EXPECT_GT(hand / galleon, 4.0);
}

TEST(TileLatencyShape, GalleonTileDelaySmallSkeletonLarge) {
  // Paper §5.5: galleon tile update delay ~0.05 s on 100 Mbit; the hand
  // pushes ~0.3 s because render time dominates transport.
  const net::LinkProfile ethernet = net::ethernet_100mbit();
  const MachineProfile m = centrino_laptop();
  const uint64_t tile_pixels = (640 / 2) * 480;
  const double galleon_delay = offscreen_sequential_seconds(m, kGalleonTris, tile_pixels) +
                               ethernet.delivery_seconds(tile_pixels * 7);  // color+depth
  const double hand_delay = offscreen_sequential_seconds(m, 830'000, tile_pixels) +
                            ethernet.delivery_seconds(tile_pixels * 7);
  EXPECT_LT(galleon_delay, 0.12);
  EXPECT_NEAR(hand_delay, 0.3, 0.15);
}

}  // namespace
}  // namespace rave::sim

// Property tests for the SIMD layer (DESIGN.md "SIMD dispatch &
// determinism"): every vectorized kernel must be byte-identical to its
// scalar twin on randomized inputs, including ragged sizes that do not
// divide the lane width, and the renderer/codec paths built on them must
// produce identical bytes at every SIMD level × thread count. Carries the
// `simd` and `tsan` ctest labels so sanitizer builds exercise the lane
// tails and the pool × lanes combination.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "mesh/primitives.hpp"
#include "render/compositor.hpp"
#include "render/rasterizer.hpp"
#include "scene/camera.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace rave {
namespace {

using render::FrameBuffer;
using render::Image;
using util::SimdLevel;

// Every level the host can actually execute (set_simd_level clamps
// unsupported requests to Scalar, so probe by round-trip). Scalar is
// always first — it is the reference twin.
std::vector<SimdLevel> supported_levels() {
  const SimdLevel before = util::active_simd_level();
  std::vector<SimdLevel> out{SimdLevel::Scalar};
  for (const SimdLevel l :
       {SimdLevel::Sse2, SimdLevel::Avx2, SimdLevel::Neon}) {
    util::set_simd_level(l);
    if (util::active_simd_level() == l) out.push_back(l);
  }
  util::set_simd_level(before);
  return out;
}

// Restores the pre-test level even when an assertion fails mid-test.
struct LevelGuard {
  SimdLevel saved = util::active_simd_level();
  ~LevelGuard() { util::set_simd_level(saved); }
};

// Sizes straddling every lane-width boundary (4/8 floats, 16/32/48 bytes)
// plus ragged odd values and a large bulk size.
const std::vector<size_t> kRaggedSizes = {0,  1,  2,  3,  5,  7,   15,  16,  17,
                                          23, 31, 32, 33, 47, 48,  49,  63,  64,
                                          65, 95, 96, 97, 255, 257, 1000, 4097};

std::vector<uint8_t> random_bytes(std::mt19937& rng, size_t n) {
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = static_cast<uint8_t>(d(rng));
  return v;
}

TEST(SimdKernels, MismatchMatchesScalarAtEverySizeAndOffset) {
  std::mt19937 rng(11);
  for (const SimdLevel level : supported_levels()) {
    for (const size_t n : kRaggedSizes) {
      std::vector<uint8_t> a = random_bytes(rng, n);
      std::vector<uint8_t> b = a;  // identical → mismatch == n
      EXPECT_EQ(util::simd::mismatch(a.data(), b.data(), n, level), n)
          << util::simd_level_name(level) << " n=" << n;
      if (n == 0) continue;
      // Plant a single differing byte at a random position (and at both
      // ends) — the kernel must report exactly that index.
      std::uniform_int_distribution<size_t> pos(0, n - 1);
      for (const size_t p : {size_t{0}, n - 1, pos(rng)}) {
        b = a;
        b[p] ^= 0x5A;
        EXPECT_EQ(util::simd::mismatch(a.data(), b.data(), n, level), p)
            << util::simd_level_name(level) << " n=" << n << " p=" << p;
      }
    }
  }
}

TEST(SimdKernels, MismatchSelfOverlapScansRuns) {
  // The codecs call mismatch with b = a + stride to measure run lengths;
  // the overlapping ranges must behave like the scalar chain compare.
  std::mt19937 rng(13);
  for (const SimdLevel level : supported_levels()) {
    for (int trial = 0; trial < 50; ++trial) {
      std::uniform_int_distribution<size_t> run_d(1, 90);
      const size_t run = run_d(rng);  // pixels with identical RGB
      std::vector<uint8_t> rgb;
      for (size_t i = 0; i < run; ++i) {
        rgb.push_back(10);
        rgb.push_back(20);
        rgb.push_back(30);
      }
      rgb.push_back(99);  // break the run
      rgb.push_back(20);
      rgb.push_back(30);
      const size_t cap = rgb.size() / 3;
      const size_t got =
          util::simd::mismatch(rgb.data(), rgb.data() + 3, (cap - 1) * 3, level) / 3 + 1;
      EXPECT_EQ(got, run) << util::simd_level_name(level);
    }
  }
}

TEST(SimdKernels, ByteSubAddMatchScalarAndRoundTrip) {
  std::mt19937 rng(17);
  for (const SimdLevel level : supported_levels()) {
    for (const size_t n : kRaggedSizes) {
      const std::vector<uint8_t> a = random_bytes(rng, n);
      const std::vector<uint8_t> b = random_bytes(rng, n);
      std::vector<uint8_t> diff_scalar(n), diff(n);
      util::simd::byte_sub(diff_scalar.data(), a.data(), b.data(), n, SimdLevel::Scalar);
      util::simd::byte_sub(diff.data(), a.data(), b.data(), n, level);
      EXPECT_EQ(diff, diff_scalar) << util::simd_level_name(level) << " n=" << n;
      std::vector<uint8_t> back(n);
      util::simd::byte_add(back.data(), b.data(), diff.data(), n, level);
      EXPECT_EQ(back, a) << util::simd_level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, FillRgbMatchesScalarAtEveryCount) {
  for (const SimdLevel level : supported_levels()) {
    for (size_t pixels = 0; pixels <= 70; ++pixels) {
      std::vector<uint8_t> ref(pixels * 3, 0xCC), got(pixels * 3, 0xCC);
      util::simd::fill_rgb(ref.data(), pixels, 17, 203, 99, SimdLevel::Scalar);
      util::simd::fill_rgb(got.data(), pixels, 17, 203, 99, level);
      EXPECT_EQ(got, ref) << util::simd_level_name(level) << " pixels=" << pixels;
      for (size_t p = 0; p < pixels; ++p) {
        ASSERT_EQ(got[p * 3 + 0], 17);
        ASSERT_EQ(got[p * 3 + 1], 203);
        ASSERT_EQ(got[p * 3 + 2], 99);
      }
    }
  }
}

TEST(SimdKernels, FillF32MatchesScalar) {
  for (const SimdLevel level : supported_levels()) {
    for (const size_t n : kRaggedSizes) {
      std::vector<float> ref(n, -7.0f), got(n, -7.0f);
      util::simd::fill_f32(ref.data(), n, 0.625f, SimdLevel::Scalar);
      util::simd::fill_f32(got.data(), n, 0.625f, level);
      EXPECT_EQ(got, ref) << util::simd_level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, PackRgb565MatchesScalar) {
  std::mt19937 rng(23);
  for (const SimdLevel level : supported_levels()) {
    for (const size_t pixels : kRaggedSizes) {
      const std::vector<uint8_t> rgb = random_bytes(rng, pixels * 3);
      std::vector<uint16_t> ref(pixels, 0xFFFF), got(pixels, 0xFFFF);
      util::simd::pack_rgb565(rgb.data(), ref.data(), pixels, SimdLevel::Scalar);
      util::simd::pack_rgb565(rgb.data(), got.data(), pixels, level);
      EXPECT_EQ(got, ref) << util::simd_level_name(level) << " pixels=" << pixels;
      for (size_t p = 0; p < pixels; ++p) {
        const uint16_t want = static_cast<uint16_t>(((rgb[p * 3] & 0xF8) << 8) |
                                                    ((rgb[p * 3 + 1] & 0xFC) << 3) |
                                                    (rgb[p * 3 + 2] >> 3));
        ASSERT_EQ(got[p], want) << "pixel " << p;
      }
    }
  }
}

TEST(SimdKernels, DepthSelectRowMatchesScalarOnRaggedWidths) {
  std::mt19937 rng(29);
  std::uniform_real_distribution<float> depth_d(0.0f, 1.0f);
  std::vector<int> widths;
  for (int w = 1; w <= 40; ++w) widths.push_back(w);
  widths.push_back(641);
  for (const SimdLevel level : supported_levels()) {
    for (const int width : widths) {
      const size_t n = static_cast<size_t>(width);
      std::vector<float> dst_depth(n), src_depth(n);
      for (size_t i = 0; i < n; ++i) {
        dst_depth[i] = depth_d(rng);
        // A third of the lanes tie exactly: ties must keep dst.
        src_depth[i] = (i % 3 == 0) ? dst_depth[i] : depth_d(rng);
      }
      const std::vector<uint8_t> dst_rgb0 = random_bytes(rng, n * 3);
      const std::vector<uint8_t> src_rgb = random_bytes(rng, n * 3);

      std::vector<float> ref_depth = dst_depth, got_depth = dst_depth;
      std::vector<uint8_t> ref_rgb = dst_rgb0, got_rgb = dst_rgb0;
      util::simd::depth_select_row(ref_depth.data(), src_depth.data(), ref_rgb.data(),
                                   src_rgb.data(), width, SimdLevel::Scalar);
      util::simd::depth_select_row(got_depth.data(), src_depth.data(), got_rgb.data(),
                                   src_rgb.data(), width, level);
      EXPECT_EQ(got_depth, ref_depth) << util::simd_level_name(level) << " w=" << width;
      EXPECT_EQ(got_rgb, ref_rgb) << util::simd_level_name(level) << " w=" << width;
    }
  }
}

TEST(SimdKernels, FrameBufferClearIdenticalAcrossLevels) {
  LevelGuard guard;
  // Ragged width so the row tail exercises the partial-lane path.
  util::set_simd_level(SimdLevel::Scalar);
  FrameBuffer ref(101, 37);
  ref.clear({0.3f, 0.62f, 0.11f});
  for (const SimdLevel level : supported_levels()) {
    util::set_simd_level(level);
    FrameBuffer fb(101, 37);
    fb.clear({0.3f, 0.62f, 0.11f});
    EXPECT_EQ(fb.color(), ref.color()) << util::simd_level_name(level);
    EXPECT_EQ(fb.depth(), ref.depth()) << util::simd_level_name(level);
  }
}

// --- renderer and compositor on top of the kernels -------------------------

scene::SceneTree random_scene(std::mt19937& rng) {
  std::uniform_real_distribution<float> pos(-1.3f, 1.3f);
  std::uniform_real_distribution<float> col(0.0f, 1.0f);
  scene::SceneTree tree;
  scene::MeshData mesh = mesh::make_uv_sphere(0.8f, 20, 14);
  mesh.base_color = {0.8f, 0.3f, 0.2f};
  tree.add_child(scene::kRootNode, "ball", std::move(mesh));
  // A soup of random triangles: skinny, degenerate-ish, overlapping in
  // depth, many partially off-screen — the hard cases for lane tails.
  scene::MeshData soup;
  for (int i = 0; i < 120; ++i) {
    for (int v = 0; v < 3; ++v) {
      soup.positions.push_back({pos(rng), pos(rng), pos(rng)});
      soup.colors.push_back({col(rng), col(rng), col(rng)});
      soup.indices.push_back(static_cast<uint32_t>(soup.positions.size() - 1));
    }
  }
  soup.compute_normals();
  tree.add_child(scene::kRootNode, "soup", std::move(soup));
  return tree;
}

scene::Camera test_camera() {
  scene::Camera cam;
  cam.eye = {0, 0, 3.5f};
  cam.target = {0, 0, 0};
  return cam;
}

TEST(SimdKernels, RasterizerByteIdenticalAcrossLevelsAndThreads) {
  LevelGuard guard;
  std::mt19937 rng(31);
  const scene::SceneTree tree = random_scene(rng);
  const scene::Camera cam = test_camera();
  // Ragged frame width: 163 is not a multiple of 4 or 8.
  util::set_simd_level(SimdLevel::Scalar);
  const FrameBuffer ref = render::render_tree(tree, cam, 163, 117);
  for (const SimdLevel level : supported_levels()) {
    util::set_simd_level(level);
    const FrameBuffer serial = render::render_tree(tree, cam, 163, 117);
    EXPECT_EQ(serial.color(), ref.color())
        << util::simd_level_name(level) << " serial color";
    EXPECT_EQ(serial.depth(), ref.depth())
        << util::simd_level_name(level) << " serial depth";
    for (const unsigned threads : {2u, 5u}) {
      util::ThreadPool pool(threads);
      render::RenderOptions opts;
      opts.pool = &pool;
      const FrameBuffer pooled = render::render_tree(tree, cam, 163, 117, opts);
      EXPECT_EQ(pooled.color(), ref.color())
          << util::simd_level_name(level) << " x " << threads << " threads, color";
      EXPECT_EQ(pooled.depth(), ref.depth())
          << util::simd_level_name(level) << " x " << threads << " threads, depth";
    }
  }
}

TEST(SimdKernels, DepthCompositeIdenticalAcrossLevelsAndThreads) {
  LevelGuard guard;
  std::mt19937 rng(37);
  const scene::SceneTree tree = random_scene(rng);
  scene::Camera cam_a = test_camera();
  scene::Camera cam_b = test_camera();
  cam_b.eye = {0.4f, -0.2f, 3.3f};
  util::set_simd_level(SimdLevel::Scalar);
  const FrameBuffer a = render::render_tree(tree, cam_a, 163, 117);
  const FrameBuffer b = render::render_tree(tree, cam_b, 163, 117);
  FrameBuffer ref = a;
  ASSERT_TRUE(render::depth_composite(ref, b).ok());
  for (const SimdLevel level : supported_levels()) {
    util::set_simd_level(level);
    FrameBuffer serial = a;
    ASSERT_TRUE(render::depth_composite(serial, b).ok());
    EXPECT_EQ(serial.color(), ref.color()) << util::simd_level_name(level);
    EXPECT_EQ(serial.depth(), ref.depth()) << util::simd_level_name(level);
    util::ThreadPool pool(4);
    FrameBuffer pooled = a;
    ASSERT_TRUE(render::depth_composite(pooled, b, &pool).ok());
    EXPECT_EQ(pooled.color(), ref.color()) << util::simd_level_name(level) << " pooled";
    EXPECT_EQ(pooled.depth(), ref.depth()) << util::simd_level_name(level) << " pooled";
  }
}

// --- codecs on top of the kernels ------------------------------------------

Image blocky_image(std::mt19937& rng, int width, int height) {
  // Runs of random length (the RLE-friendly case) mixed with noise.
  std::uniform_int_distribution<int> byte_d(0, 255);
  std::uniform_int_distribution<int> run_d(1, 400);
  Image img(width, height);
  size_t p = 0;
  const size_t pixels = static_cast<size_t>(width) * height;
  while (p < pixels) {
    const size_t run = std::min<size_t>(static_cast<size_t>(run_d(rng)), pixels - p);
    const uint8_t r = static_cast<uint8_t>(byte_d(rng));
    const uint8_t g = static_cast<uint8_t>(byte_d(rng));
    const uint8_t b = static_cast<uint8_t>(byte_d(rng));
    for (size_t i = 0; i < run; ++i, ++p) {
      img.rgb[p * 3] = r;
      img.rgb[p * 3 + 1] = g;
      img.rgb[p * 3 + 2] = b;
    }
  }
  for (size_t i = 0; i < pixels / 10; ++i) {  // salt with single-pixel noise
    std::uniform_int_distribution<size_t> pos(0, pixels - 1);
    const size_t q = pos(rng);
    img.rgb[q * 3] = static_cast<uint8_t>(byte_d(rng));
  }
  return img;
}

TEST(SimdKernels, CodecsByteIdenticalAcrossLevels) {
  LevelGuard guard;
  std::mt19937 rng(41);
  // 151 is odd and coprime to every lane count.
  const Image frame = blocky_image(rng, 151, 53);
  const Image previous = blocky_image(rng, 151, 53);
  for (const compress::CodecKind kind :
       {compress::CodecKind::Raw, compress::CodecKind::Rle, compress::CodecKind::Delta,
        compress::CodecKind::Quantize}) {
    const auto codec = compress::make_codec(kind);
    util::set_simd_level(SimdLevel::Scalar);
    const compress::EncodedImage ref_enc = codec->encode(frame, &previous);
    auto ref_dec = codec->decode(ref_enc, &previous);
    ASSERT_TRUE(ref_dec.ok()) << codec_name(kind);
    const Image ref_img = std::move(ref_dec).take();
    if (kind != compress::CodecKind::Quantize) {
      EXPECT_EQ(ref_img.rgb, frame.rgb) << codec_name(kind) << " lossless roundtrip";
    }
    for (const SimdLevel level : supported_levels()) {
      util::set_simd_level(level);
      const compress::EncodedImage enc = codec->encode(frame, &previous);
      EXPECT_EQ(enc.data, ref_enc.data)
          << codec_name(kind) << " encode differs at " << util::simd_level_name(level);
      EXPECT_EQ(enc.keyframe, ref_enc.keyframe);
      auto dec = codec->decode(enc, &previous);
      ASSERT_TRUE(dec.ok()) << codec_name(kind) << " " << util::simd_level_name(level);
      EXPECT_EQ(std::move(dec).take().rgb, ref_img.rgb)
          << codec_name(kind) << " decode differs at " << util::simd_level_name(level);
    }
  }
}

TEST(SimdKernels, EncodedImageByteSizeEqualsSerializedSize) {
  std::mt19937 rng(43);
  const Image frame = blocky_image(rng, 64, 48);
  const Image previous = blocky_image(rng, 64, 48);
  for (const compress::CodecKind kind :
       {compress::CodecKind::Raw, compress::CodecKind::Rle, compress::CodecKind::Delta,
        compress::CodecKind::Quantize}) {
    const auto codec = compress::make_codec(kind);
    const compress::EncodedImage enc = codec->encode(frame, &previous);
    // byte_size() feeds the adaptive encoder's transfer-time predictions;
    // it must equal the real wire size without allocating it.
    EXPECT_EQ(enc.byte_size(), enc.serialize().size()) << codec_name(kind);
    // And an empty payload (degenerate but legal) still agrees.
    compress::EncodedImage empty;
    EXPECT_EQ(empty.byte_size(), empty.serialize().size());
  }
}

TEST(SimdKernels, LevelParsingAndClamping) {
  LevelGuard guard;
  SimdLevel l = SimdLevel::Avx2;
  EXPECT_TRUE(util::parse_simd_level("scalar", l));
  EXPECT_EQ(l, SimdLevel::Scalar);
  EXPECT_TRUE(util::parse_simd_level("sse2", l));
  EXPECT_EQ(l, SimdLevel::Sse2);
  EXPECT_TRUE(util::parse_simd_level("avx2", l));
  EXPECT_EQ(l, SimdLevel::Avx2);
  EXPECT_TRUE(util::parse_simd_level("neon", l));
  EXPECT_EQ(l, SimdLevel::Neon);
  EXPECT_FALSE(util::parse_simd_level("avx512", l));
  EXPECT_FALSE(util::parse_simd_level("", l));

  // Forcing scalar always sticks; the wrong ISA family degrades to scalar
  // rather than faulting.
  util::set_simd_level(SimdLevel::Scalar);
  EXPECT_EQ(util::active_simd_level(), SimdLevel::Scalar);
#if defined(__x86_64__)
  util::set_simd_level(SimdLevel::Neon);
  EXPECT_EQ(util::active_simd_level(), SimdLevel::Scalar);
#elif defined(__aarch64__)
  util::set_simd_level(SimdLevel::Avx2);
  EXPECT_EQ(util::active_simd_level(), SimdLevel::Scalar);
#endif
}

}  // namespace
}  // namespace rave

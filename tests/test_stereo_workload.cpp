// Stereo rendering and usage-profile workload tests.
#include <gtest/gtest.h>

#include "mesh/primitives.hpp"
#include "render/stereo.hpp"
#include "sim/workload.hpp"

namespace rave {
namespace {

using scene::Camera;
using scene::SceneTree;

SceneTree sphere_at(const util::Vec3& pos) {
  SceneTree tree;
  tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.4f, 20, 14),
                 util::Mat4::translate(pos));
  return tree;
}

Camera front_camera() {
  Camera cam;
  cam.eye = {0, 0, 4};
  cam.target = {0, 0, 0};
  return cam;
}

int leftmost_lit_column(const render::FrameBuffer& fb) {
  for (int x = 0; x < fb.width(); ++x)
    for (int y = 0; y < fb.height(); ++y)
      if (fb.depth_at(x, y) < 1.0f) return x;
  return -1;
}

TEST(Stereo, EyeCamerasStraddleCenter) {
  const Camera center = front_camera();
  const Camera left = render::left_eye(center, 0.1f);
  const Camera right = render::right_eye(center, 0.1f);
  EXPECT_LT(left.eye.x, center.eye.x);
  EXPECT_GT(right.eye.x, center.eye.x);
  EXPECT_NEAR((left.eye - right.eye).length(), 0.1f, 1e-5f);
  // Toe-in: both converge on the shared target.
  EXPECT_EQ(left.target, center.target);
  EXPECT_EQ(right.target, center.target);
}

TEST(Stereo, ParallaxShiftsForegroundObject) {
  // An object in front of the convergence point projects left in the right
  // eye and right in the left eye (negative parallax).
  const SceneTree tree = sphere_at({0, 0, 2.0f});  // in front of target plane
  const render::StereoPair pair =
      render::render_stereo(tree, front_camera(), 96, 96, {.eye_separation = 0.5f});
  const int left_col = leftmost_lit_column(pair.left);
  const int right_col = leftmost_lit_column(pair.right);
  ASSERT_GE(left_col, 0);
  ASSERT_GE(right_col, 0);
  EXPECT_GT(left_col, right_col);  // left eye sees it shifted right
}

TEST(Stereo, ZeroSeparationEyesMatch) {
  const SceneTree tree = sphere_at({0.2f, 0.1f, 0});
  const render::StereoPair pair =
      render::render_stereo(tree, front_camera(), 64, 64, {.eye_separation = 0.0f});
  EXPECT_EQ(pair.left.color(), pair.right.color());
}

TEST(Stereo, SideBySidePackingLayout) {
  const SceneTree tree = sphere_at({0, 0, 0});
  const render::StereoPair pair = render::render_stereo(tree, front_camera(), 40, 30, {});
  const render::Image packed = render::pack_side_by_side(pair);
  EXPECT_EQ(packed.width, 80);
  EXPECT_EQ(packed.height, 30);
  // Left half pixels come from the left eye.
  const render::Image left = pair.left.to_image();
  for (int x = 0; x < 40; x += 7)
    EXPECT_EQ(packed.pixel(x, 15)[0], left.pixel(x, 15)[0]);
}

TEST(Stereo, AnaglyphMixesChannels) {
  const SceneTree tree = sphere_at({0, 0, 1.0f});
  const render::StereoPair pair =
      render::render_stereo(tree, front_camera(), 64, 64, {.eye_separation = 0.6f});
  const render::Image ana = render::anaglyph(pair);
  EXPECT_EQ(ana.width, 64);
  // Parallax regions show channel separation: some pixel has red but no
  // green (left-eye only) or green/blue but dim red (right-eye only).
  bool red_only = false;
  for (size_t i = 0; i + 2 < ana.rgb.size(); i += 3)
    if (ana.rgb[i] > 80 && ana.rgb[i + 1] < 40) red_only = true;
  EXPECT_TRUE(red_only);
}

TEST(Workload, TracesAreDeterministicPerSeed) {
  sim::UsageProfile profile;
  profile.kind = sim::UsageKind::Inspect;
  profile.seed = 42;
  const Camera cam = front_camera();
  const auto a = sim::generate_trace(profile, cam);
  const auto b = sim::generate_trace(profile, cam);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 13) {
    EXPECT_EQ(a[i].camera.eye, b[i].camera.eye) << i;
    EXPECT_EQ(a[i].edits_scene, b[i].edits_scene) << i;
  }
  profile.seed = 43;
  const auto c = sim::generate_trace(profile, cam);
  bool differs = false;
  for (size_t i = 0; i < a.size() && i < c.size(); ++i)
    if (!(a[i].camera.eye == c[i].camera.eye)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Workload, ProfilesHaveDistinctCharacters) {
  const Camera cam = front_camera();
  const auto movement = [&](sim::UsageKind kind) {
    sim::UsageProfile profile;
    profile.kind = kind;
    profile.duration = 10.0;
    const auto trace = sim::generate_trace(profile, cam);
    double total = 0;
    for (size_t i = 1; i < trace.size(); ++i)
      total += (trace[i].camera.eye - trace[i - 1].camera.eye).length();
    return total;
  };
  // Idle barely moves; fly-through moves the most.
  EXPECT_LT(movement(sim::UsageKind::Idle), movement(sim::UsageKind::Orbit));
  EXPECT_GT(movement(sim::UsageKind::FlyThrough), movement(sim::UsageKind::Idle) * 5.0);
}

TEST(Workload, InspectDollyRaisesLoadFactor) {
  sim::UsageProfile profile;
  profile.kind = sim::UsageKind::Inspect;
  profile.duration = 6.0;
  const auto trace = sim::generate_trace(profile, front_camera());
  double max_load = 0, min_load = 10;
  for (const auto& step : trace) {
    const double load = sim::load_factor(step, {0, 0, 0}, 1.0);
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  // Bursty by design: the close-in phase loads >1.5x the pull-back phase.
  EXPECT_GT(max_load, min_load * 1.5);
  EXPECT_GE(min_load, 0.15);
  EXPECT_LE(max_load, 3.0);
}

TEST(Workload, OrbitKeepsDistanceSoLoadIsFlat) {
  sim::UsageProfile profile;
  profile.kind = sim::UsageKind::Orbit;
  profile.duration = 8.0;
  const auto trace = sim::generate_trace(profile, front_camera());
  for (const auto& step : trace) {
    const double load = sim::load_factor(step, {0, 0, 0}, 1.0);
    EXPECT_NEAR(load, sim::load_factor(trace.front(), {0, 0, 0}, 1.0), 0.6);
  }
}

}  // namespace
}  // namespace rave

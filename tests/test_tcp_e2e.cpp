// End-to-end over real TCP sockets: data service, render service and thin
// client in threads on loopback — the §4.3 socket data plane without any
// simulation. Kept small so CI stays fast.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/data_service.hpp"
#include "core/fabric.hpp"
#include "core/render_service.hpp"
#include "core/thin_client.hpp"
#include "mesh/primitives.hpp"
#include "obs/trace.hpp"

namespace rave::core {
namespace {

TEST(TcpEndToEnd, BootstrapFrameAndEdit) {
  util::RealClock clock;
  TcpFabric fabric;

  DataService data(clock);
  scene::SceneTree tree;
  const scene::NodeId ball =
      tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  auto data_ap = fabric.listen("data", [&](net::ChannelPtr ch) { data.accept(std::move(ch)); });
  ASSERT_TRUE(data_ap.ok()) << data_ap.error();

  RenderService render(clock, fabric);
  auto client_ap = render.listen_clients("clients");
  ASSERT_TRUE(client_ap.ok());
  ASSERT_EQ(client_ap.value().rfind("tcp:", 0), 0u);

  std::atomic<bool> running{true};
  std::thread data_thread([&] {
    while (running.load()) {
      if (data.pump() == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::thread render_thread([&] {
    while (running.load()) {
      if (render.pump() == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  ASSERT_TRUE(render.connect_session(data_ap.value(), "demo").ok());
  for (int i = 0; i < 4000 && !render.bootstrapped("demo"); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(render.bootstrapped("demo"));

  ThinClient client(clock, fabric);
  ASSERT_TRUE(client.connect(client_ap.value(), "demo").ok());
  scene::Camera cam;
  cam.eye = {0, 0, 3};
  auto frame = client.request_frame(cam, 64, 64, 5.0);
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().width, 64);
  EXPECT_LT(frame.value().pixel(32, 32)[2], 250);  // something rendered

  // A collaborative edit over the same sockets commits at the data service.
  ASSERT_TRUE(
      client.send_update(scene::SceneUpdate::set_transform(ball, util::Mat4::rotate_y(0.4f)))
          .ok());
  for (int i = 0; i < 4000 && data.committed_updates("demo") == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(data.committed_updates("demo"), 1u);

  running = false;
  data_thread.join();
  render_thread.join();
}

// The trace context crosses a real socket: the client's root span and the
// render service's serving spans — recorded on different threads — land
// in one trace, stitched into a single frame timeline.
TEST(TcpEndToEnd, TracePropagatesAcrossSockets) {
  obs::Tracer::global().reset();
  obs::Tracer::global().set_enabled(true);

  util::RealClock clock;
  TcpFabric fabric;

  DataService data(clock);
  scene::SceneTree tree;
  tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 16, 12));
  ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
  auto data_ap = fabric.listen("data", [&](net::ChannelPtr ch) { data.accept(std::move(ch)); });
  ASSERT_TRUE(data_ap.ok()) << data_ap.error();

  RenderService render(clock, fabric);
  auto client_ap = render.listen_clients("clients");
  ASSERT_TRUE(client_ap.ok());

  std::atomic<bool> running{true};
  std::thread service_thread([&] {
    while (running.load()) {
      if (data.pump() + render.pump() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  ASSERT_TRUE(render.connect_session(data_ap.value(), "demo").ok());
  for (int i = 0; i < 4000 && !render.bootstrapped("demo"); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(render.bootstrapped("demo"));

  ThinClient client(clock, fabric);
  ASSERT_TRUE(client.connect(client_ap.value(), "demo").ok());
  scene::Camera cam;
  cam.eye = {0, 0, 3};
  auto frame = client.request_frame(cam, 64, 64, 5.0);
  ASSERT_TRUE(frame.ok()) << frame.error();

  running = false;
  service_thread.join();
  obs::Tracer::global().set_enabled(false);

  const auto spans = obs::Tracer::global().spans();
  const auto ids = obs::trace_ids(spans);
  ASSERT_EQ(ids.size(), 1u) << "client and service spans must share one trace";

  std::set<std::string> names;
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, ids[0]);
    names.insert(span.name);
  }
  // Both sides of the socket contributed: the client's root + decode, the
  // service's serving pipeline with the rasterizer stages inside it.
  for (const char* expected : {"frame", "decode", "serve_frame", "encode", "shade", "raster"})
    EXPECT_TRUE(names.count(expected) != 0) << "missing span: " << expected;

  const std::string timeline = obs::stitch_trace(spans, ids[0]);
  EXPECT_NE(timeline.find("frame"), std::string::npos);
  EXPECT_NE(timeline.find("serve_frame"), std::string::npos);
}

}  // namespace
}  // namespace rave::core

// Telemetry-plane tests: time-series store semantics, the central
// collector's determinism and gap behaviour, the SLO engine's state
// machine and anomaly detector, trend advisories changing migration
// plans, and the full-grid wiring (scrape over the fabric, advisor into
// plan_migration, rave-top dashboard, JSONL export). Everything runs
// under SimClock so two identically-seeded runs must produce identical
// bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/grid.hpp"
#include "core/migration.hpp"
#include "core/status.hpp"
#include "mesh/primitives.hpp"
#include "obs/collector.hpp"
#include "obs/event.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "scene/camera.hpp"
#include "scene/tree.hpp"

namespace {
// CI's telemetry lane sets RAVE_TELEMETRY_DIR and uploads whatever the
// tests drop there when a run fails.
void write_artifact(const std::string& name, const std::string& content) {
  const char* dir = std::getenv("RAVE_TELEMETRY_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + name, std::ios::binary);
  out << content;
}
}  // namespace

namespace rave::obs {
namespace {

// --- time-series store -------------------------------------------------------

TEST(Timeseries, ParsePrometheusKeepsLabelsAndSkipsComments) {
  const std::string text =
      "# TYPE rave_x_total counter\n"
      "rave_x_total{kind=\"a\"} 7\n"
      "rave_depth 2.5\n"
      "rave_lat_seconds_bucket{le=\"0.1\"} 3\n"
      "rave_lat_seconds_bucket{le=\"+Inf\"} 4\n";
  const auto samples = parse_prometheus(text);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "rave_x_total");
  EXPECT_EQ(samples[0].labels, "{kind=\"a\"}");
  EXPECT_DOUBLE_EQ(samples[0].value, 7);
  EXPECT_EQ(samples[1].name, "rave_depth");
  EXPECT_EQ(samples[1].labels, "");
  EXPECT_EQ(samples[3].labels, "{le=\"+Inf\"}");

  const auto pairs = parse_labels("{a=\"x\",le=\"0.1\"}");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[1].first, "le");
  EXPECT_EQ(pairs[1].second, "0.1");
}

TEST(Timeseries, RingKeepsNewestPointsOldestFirst) {
  TimeSeriesStore store(4);
  const SeriesKey key{"h", "m", ""};
  for (int i = 0; i < 6; ++i) store.append(key, i, i * 10.0);
  const auto points = store.points(key);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_DOUBLE_EQ(points.front().t, 2);  // 0 and 1 overwritten
  EXPECT_DOUBLE_EQ(points.back().t, 5);
  EXPECT_DOUBLE_EQ(points.back().value, 50);
  const auto tail = store.recent_values(key, 2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0], 40);
  EXPECT_DOUBLE_EQ(tail[1], 50);
}

TEST(Timeseries, RollupWindowsAndRates) {
  TimeSeriesStore store;
  const SeriesKey key{"h", "rave_frames_total", ""};
  // Counter climbing 12/s, one stale point outside the window.
  store.append(key, 0.0, 0);
  for (int i = 1; i <= 10; ++i) store.append(key, i, i * 12.0);
  const Rollup roll = store.rollup(key, 5.0, 10.0);
  EXPECT_EQ(roll.count, 5u);  // t in (5, 10]
  EXPECT_DOUBLE_EQ(roll.min, 72);
  EXPECT_DOUBLE_EQ(roll.max, 120);
  EXPECT_DOUBLE_EQ(roll.last, 120);
  EXPECT_DOUBLE_EQ(roll.rate, 12.0);
  EXPECT_GT(roll.ewma, 72);
  EXPECT_LE(roll.ewma, 120);
  // Empty window → zero rollup.
  EXPECT_EQ(store.rollup(key, 5.0, 100.0).count, 0u);
}

TEST(Timeseries, WindowedQuantileInterpolatesAcrossBuckets) {
  TimeSeriesStore store;
  const std::string host = "h";
  // Cumulative buckets at t=0 (all zero) and t=4: 80 obs ≤ 0.1, 20 more
  // ≤ 1.0, none beyond.
  store.append({host, "lat_bucket", "{le=\"0.1\"}"}, 0, 0);
  store.append({host, "lat_bucket", "{le=\"1\"}"}, 0, 0);
  store.append({host, "lat_bucket", "{le=\"+Inf\"}"}, 0, 0);
  store.append({host, "lat_bucket", "{le=\"0.1\"}"}, 4, 80);
  store.append({host, "lat_bucket", "{le=\"1\"}"}, 4, 100);
  store.append({host, "lat_bucket", "{le=\"+Inf\"}"}, 4, 100);

  const double p50 = store.windowed_quantile(host, "lat", "", 0.5, 10.0, 5.0);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 0.1);  // rank 50 of 100 interpolates inside the first bucket
  const double p90 = store.windowed_quantile(host, "lat", "", 0.9, 10.0, 5.0);
  EXPECT_GT(p90, 0.1);  // rank 91 lands in the (0.1, 1] bucket
  EXPECT_LE(p90, 1.0);
  EXPECT_LT(p50, p90);
  // No increase inside the window → no data → 0.
  EXPECT_DOUBLE_EQ(store.windowed_quantile(host, "lat", "", 0.5, 0.5, 50.0), 0.0);
}

TEST(Timeseries, JsonlExportIsDeterministic) {
  const auto build = [] {
    TimeSeriesStore store;
    store.append({"b", "m2", ""}, 1.5, 2.25);
    store.append({"a", "m1", "{k=\"v\"}"}, 1.0, 42);
    store.append({"a", "m1", "{k=\"v\"}"}, 2.0, 43);
    return store.export_jsonl();
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  // Map-ordered: host "a" precedes "b" regardless of insertion order.
  EXPECT_LT(first.find("\"host\":\"a\""), first.find("\"host\":\"b\""));
  EXPECT_NE(first.find("{\"t\":1,\"host\":\"a\",\"name\":\"m1\",\"labels\":{\"k\":\"v\"},"
                       "\"value\":42}"),
            std::string::npos)
      << first;
}

TEST(Timeseries, SparklineScalesToOwnRange) {
  EXPECT_EQ(sparkline({}), "");
  const std::string line = sparkline({0, 1, 2, 3});
  EXPECT_NE(line.find("▁"), std::string::npos);
  EXPECT_NE(line.find("█"), std::string::npos);
  // Flat series render mid-level, not bottom.
  EXPECT_EQ(sparkline({5, 5}), "▄▄");
}

// --- collector ---------------------------------------------------------------

TEST(Collector, DeterministicAcrossIdenticalRuns) {
  const auto run = [] {
    util::SimClock clock;
    Collector::Options options;
    options.interval = 0.5;
    options.ring_capacity = 64;
    Collector collector(clock, options);
    int alpha_calls = 0;
    collector.add_target({"alpha", [&alpha_calls]() -> util::Result<std::string> {
                            ++alpha_calls;
                            char buf[96];
                            std::snprintf(buf, sizeof(buf),
                                          "rave_ticks_total %d\nrave_depth %d\n",
                                          alpha_calls * 3, alpha_calls % 4);
                            return std::string(buf);
                          }});
    int beta_calls = 0;
    collector.add_target({"beta", [&beta_calls]() -> util::Result<std::string> {
                            ++beta_calls;
                            if (beta_calls % 3 == 0)
                              return util::make_error("synthetic outage");
                            return std::string("rave_ticks_total ") +
                                   std::to_string(beta_calls) + "\n";
                          }});
    for (int i = 0; i < 24; ++i) {
      clock.advance(0.25);
      collector.tick();
    }
    return collector.export_jsonl();
  };
  const std::string first = run();
  const std::string second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Both hosts contributed, including beta's gap series.
  EXPECT_NE(first.find("\"host\":\"alpha\""), std::string::npos);
  EXPECT_NE(first.find("\"host\":\"beta\""), std::string::npos);
  EXPECT_NE(first.find("rave_collector_gaps_total"), std::string::npos);
}

TEST(Collector, GapNeverStallsHealthyTargets) {
  util::SimClock clock;
  Collector collector(clock);
  collector.add_target(
      {"dead", []() -> util::Result<std::string> { return util::make_error("down"); }});
  collector.add_target(
      {"live", []() -> util::Result<std::string> { return std::string("rave_up 1\n"); }});
  for (int i = 0; i < 5; ++i) {
    clock.advance(1.0);
    collector.tick();
  }
  const auto health = collector.health();
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].host, "dead");
  EXPECT_GE(health[0].gaps, 5u);
  EXPECT_EQ(health[0].scrapes, 0u);
  EXPECT_EQ(health[0].last_error, "down");
  EXPECT_GE(health[1].scrapes, 5u);
  EXPECT_EQ(health[1].gaps, 0u);
  // The gap became history the dashboard can trend on.
  EXPECT_TRUE(collector.store().contains({"dead", "rave_collector_gaps_total", ""}));
  EXPECT_TRUE(collector.store().contains({"live", "rave_up", ""}));
}

TEST(Collector, ReRegisteringTargetKeepsHistory) {
  util::SimClock clock;
  Collector collector(clock);
  collector.add_target(
      {"h", []() -> util::Result<std::string> { return std::string("rave_v 1\n"); }});
  clock.advance(1.0);
  collector.tick();
  collector.add_target(
      {"h", []() -> util::Result<std::string> { return std::string("rave_v 2\n"); }});
  clock.advance(1.0);
  collector.tick();
  EXPECT_EQ(collector.target_count(), 1u);
  EXPECT_EQ(collector.store().points({"h", "rave_v", ""}).size(), 2u);
}

// --- SLO engine --------------------------------------------------------------

TEST(Slo, GaugeObjectiveBurnsThenViolatesThenRecovers) {
  TimeSeriesStore store;
  SloEngine engine;
  SloSpec spec;
  spec.name = "fps_floor";
  spec.metric = "rave_fps";
  spec.kind = SloSpec::Kind::GaugeAtLeast;
  spec.threshold = 10.0;
  spec.window = 3.0;
  spec.burn_seconds = 2.0;
  engine.add(spec);
  const SeriesKey key{"hostA", "rave_fps", ""};

  // Healthy.
  for (double t = 1; t <= 4; t += 1) store.append(key, t, 15);
  auto status = engine.evaluate(store, 4);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].state, SloStatus::State::Ok);
  EXPECT_EQ(status[0].host, "hostA");

  // Degraded: first evaluation inside the violation is Burning…
  for (double t = 5; t <= 8; t += 1) store.append(key, t, 4);
  status = engine.evaluate(store, 8);
  EXPECT_EQ(status[0].state, SloStatus::State::Burning);
  // …and once it sustains past burn_seconds, Violated.
  for (double t = 9; t <= 11; t += 1) {
    store.append(key, t, 4);
    status = engine.evaluate(store, t);
  }
  EXPECT_EQ(status[0].state, SloStatus::State::Violated);
  EXPECT_GE(status[0].violating_for, spec.burn_seconds);
  const TrendAdvisory advisory = engine.advisory("hostA");
  EXPECT_TRUE(advisory.slo_burning);
  EXPECT_NE(advisory.note.find("fps_floor"), std::string::npos);

  // Recovery.
  for (double t = 12; t <= 16; t += 1) {
    store.append(key, t, 18);
    status = engine.evaluate(store, t);
  }
  EXPECT_EQ(status[0].state, SloStatus::State::Ok);
  EXPECT_FALSE(engine.advisory("hostA").slo_burning);
}

TEST(Slo, RateObjectivesUseWindowedCounterRate) {
  TimeSeriesStore store;
  SloEngine engine;
  SloSpec fps;
  fps.name = "fps";
  fps.metric = "rave_frames_total";
  fps.kind = SloSpec::Kind::RateAtLeast;
  fps.threshold = 10.0;
  fps.window = 4.0;
  engine.add(fps);
  SloSpec churn;
  churn.name = "redispatch";
  churn.metric = "rave_redispatch_total";
  churn.kind = SloSpec::Kind::RateAtMost;
  churn.threshold = 1e-9;
  churn.window = 4.0;
  engine.add(churn);
  const SeriesKey frames{"h", "rave_frames_total", ""};
  const SeriesKey redispatch{"h", "rave_redispatch_total", ""};

  // 15 frames/s, zero re-dispatches: both objectives Ok.
  for (double t = 1; t <= 6; t += 1) {
    store.append(frames, t, t * 15);
    store.append(redispatch, t, 0);
  }
  auto status = engine.evaluate(store, 6);
  ASSERT_EQ(status.size(), 2u);
  EXPECT_EQ(status[0].state, SloStatus::State::Ok);
  EXPECT_EQ(status[1].state, SloStatus::State::Ok);

  // Frame rate collapses to 2/s and re-dispatches start: both burn.
  for (double t = 7; t <= 12; t += 1) {
    store.append(frames, t, 90 + (t - 6) * 2);
    store.append(redispatch, t, (t - 6) * 3);
    status = engine.evaluate(store, t);
  }
  EXPECT_NE(status[0].state, SloStatus::State::Ok);
  EXPECT_NE(status[1].state, SloStatus::State::Ok);
}

TEST(Slo, StepChangeFlagsAnomalyIndependentOfThreshold) {
  TimeSeriesStore store;
  SloEngine engine;
  SloSpec spec;
  spec.name = "frame_mean";
  spec.metric = "rave_frame_mean";
  spec.kind = SloSpec::Kind::GaugeAtLeast;
  spec.threshold = 0.0;  // never violates: anomaly only
  spec.window = 3.0;
  spec.anomaly_factor = 0.5;
  engine.add(spec);
  const SeriesKey key{"h", "rave_frame_mean", ""};

  bool flagged = false;
  bool advisory_at_flag = false;
  double value = 10;
  for (double t = 1; t <= 20; t += 1) {
    if (t >= 12) value = 30;  // step change: 10 → 30
    store.append(key, t, value);
    const auto& status = engine.evaluate(store, t);
    ASSERT_EQ(status.size(), 1u);
    EXPECT_EQ(status[0].state, SloStatus::State::Ok);  // threshold never trips
    if (t < 12) {
      EXPECT_FALSE(status[0].anomaly) << "false positive at t=" << t;
    }
    if (status[0].anomaly && !flagged) {
      flagged = true;
      advisory_at_flag = engine.advisory("h").anomaly;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_TRUE(advisory_at_flag);
  // Once the new level is established the step is history, not an anomaly.
  EXPECT_FALSE(engine.advisory("h").anomaly);
}

TEST(Slo, SharedRegistrySeriesEvaluateOncePerRealHost) {
  // The in-process grid shares one MetricsRegistry, so every scrape
  // carries every host's per-host families. A series whose host label
  // disagrees with its scrape tag must be skipped, not double-counted.
  TimeSeriesStore store;
  SloEngine engine;
  SloSpec spec;
  spec.name = "fps_floor";
  spec.metric = "rave_fps";
  spec.kind = SloSpec::Kind::GaugeAtLeast;
  spec.threshold = 10.0;
  spec.window = 5.0;
  engine.add(spec);
  for (double t = 1; t <= 3; t += 1) {
    // Both scrape targets see both hosts' labelled series.
    store.append({"a", "rave_fps", "{host=\"a\"}"}, t, 20);
    store.append({"a", "rave_fps", "{host=\"b\"}"}, t, 5);
    store.append({"b", "rave_fps", "{host=\"a\"}"}, t, 20);
    store.append({"b", "rave_fps", "{host=\"b\"}"}, t, 5);
  }
  const auto& status = engine.evaluate(store, 3);
  ASSERT_EQ(status.size(), 2u);  // one unit per real host, not four
  EXPECT_EQ(status[0].host, "a");
  EXPECT_EQ(status[0].state, SloStatus::State::Ok);
  EXPECT_EQ(status[1].host, "b");
  EXPECT_NE(status[1].state, SloStatus::State::Ok);
}

}  // namespace
}  // namespace rave::obs

namespace rave::core {
namespace {

// --- trend advisories in migration planning ----------------------------------

NodeCost node(scene::NodeId id, uint64_t triangles) {
  NodeCost cost;
  cost.node = id;
  cost.triangles = triangles;
  return cost;
}

// The acceptance property: a sustained SLO burn changes a plan that the
// instantaneous EWMA flags alone would leave empty.
TEST(TrendMigration, BurnOnlyServiceShedsWhereEwmaWouldNot) {
  ServiceLoadView burning;
  burning.subscriber_id = 1;
  burning.capacity.polygons_per_sec = 150'000;  // budget 10k at 15 fps
  burning.fps = 20;
  burning.assigned = {node(1, 4000), node(2, 3000), node(3, 1000)};  // within budget
  ServiceLoadView helper;
  helper.subscriber_id = 2;
  helper.capacity.polygons_per_sec = 300'000;

  // Instantaneous flags alone: nothing is overloaded, the plan is empty.
  EXPECT_TRUE(plan_migration({burning, helper}).empty());

  // The telemetry plane disagrees: the same inputs plus a burn → shed.
  burning.slo_burning = true;
  burning.advisory = "frame_p99 host=one: BURNING value=0.08 bound=0.066";
  MigrationExplain explain;
  const auto actions = plan_migration({burning, helper}, {}, &explain);
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].kind, MigrationAction::Kind::MoveNodes);
  EXPECT_EQ(actions[0].from, 1u);
  EXPECT_EQ(actions[0].to, 2u);
  // Budget says no deficit, so the burn sheds the fixed 25% slice:
  // smallest-first covers 2000 work units with nodes 3 (1000) + 2 (3000).
  EXPECT_EQ(actions[0].nodes.size(), 2u);

  bool marked = false;
  for (const std::string& line : explain.inputs)
    if (line.find("slo-burn") != std::string::npos &&
        line.find("[frame_p99") != std::string::npos)
      marked = true;
  EXPECT_TRUE(marked) << "explain inputs missing the advisory marker";
}

TEST(TrendMigration, AnomalousReceiverIsRejectedWithReason) {
  ServiceLoadView overloaded;
  overloaded.subscriber_id = 1;
  overloaded.capacity.polygons_per_sec = 15'000;  // budget 1000
  overloaded.overloaded = true;
  overloaded.assigned = {node(1, 800), node(2, 700), node(3, 600)};
  ServiceLoadView steady;
  steady.subscriber_id = 2;
  steady.capacity.polygons_per_sec = 75'000;
  ServiceLoadView anomalous;
  anomalous.subscriber_id = 3;
  anomalous.capacity.polygons_per_sec = 300'000;  // most headroom

  // Baseline: headroom order sends the work to the anomalous candidate.
  const auto baseline = plan_migration({overloaded, steady, anomalous});
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline[0].to, 3u);

  anomalous.anomaly = true;
  anomalous.advisory = "frame_mean host=three: ANOMALY";
  MigrationExplain explain;
  const auto actions = plan_migration({overloaded, steady, anomalous}, {}, &explain);
  ASSERT_FALSE(actions.empty());
  for (const MigrationAction& action : actions)
    if (action.kind == MigrationAction::Kind::MoveNodes) {
      EXPECT_EQ(action.to, 2u);
    }
  bool rejected = false;
  for (const auto& rejection : explain.rejected)
    if (rejection.candidate == 3 &&
        rejection.reason.find("trend advisory disqualifies receiver") != std::string::npos)
      rejected = true;
  EXPECT_TRUE(rejected);
}

TEST(TrendMigration, BurningSurvivorTakesOrphansOnlyAsLastResort) {
  ServiceLoadView dead;
  dead.subscriber_id = 1;
  dead.failed = true;
  dead.assigned = {node(1, 500), node(2, 400)};
  ServiceLoadView healthy;
  healthy.subscriber_id = 2;
  healthy.capacity.polygons_per_sec = 75'000;
  ServiceLoadView burning;
  burning.subscriber_id = 3;
  burning.capacity.polygons_per_sec = 300'000;
  burning.slo_burning = true;

  MigrationExplain explain;
  const auto actions = plan_migration({dead, healthy, burning}, {}, &explain);
  ASSERT_FALSE(actions.empty());
  for (const MigrationAction& action : actions)
    if (action.kind == MigrationAction::Kind::MoveNodes) {
      EXPECT_EQ(action.to, 2u);
    }
  bool rejected = false;
  for (const auto& rejection : explain.rejected)
    if (rejection.candidate == 3 &&
        rejection.reason.find("survivor") != std::string::npos)
      rejected = true;
  EXPECT_TRUE(rejected);

  // With nobody healthy left, the burning survivor still takes the load —
  // a degraded frame rate beats a hole in the scene.
  const auto last_resort = plan_migration({dead, burning});
  ASSERT_FALSE(last_resort.empty());
  EXPECT_EQ(last_resort[0].to, 3u);
}

TEST(TrendMigration, UnderloadFillSkipsFlaggedService) {
  ServiceLoadView idle;
  idle.subscriber_id = 1;
  idle.capacity.polygons_per_sec = 150'000;
  idle.underloaded = true;
  ServiceLoadView loaded;
  loaded.subscriber_id = 2;
  loaded.capacity.polygons_per_sec = 150'000;
  loaded.assigned = {node(1, 2000), node(2, 2000), node(3, 2000)};

  // Baseline: the idle service pulls work from the loaded one.
  const auto baseline = plan_migration({idle, loaded});
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline[0].kind, MigrationAction::Kind::MoveNodes);
  EXPECT_EQ(baseline[0].to, 1u);

  idle.slo_burning = true;
  MigrationExplain explain;
  const auto actions = plan_migration({idle, loaded}, {}, &explain);
  EXPECT_TRUE(actions.empty());  // no fill into a burning service
  bool rejected = false;
  for (const auto& rejection : explain.rejected)
    if (rejection.candidate == 1 &&
        rejection.reason.find("blocks underload fill") != std::string::npos)
      rejected = true;
  EXPECT_TRUE(rejected);
}

// --- full-grid wiring --------------------------------------------------------

struct GridRunResult {
  std::string jsonl;
  std::string slo;
  std::string dashboard;
};

// One deterministic grid run under virtual time: data host + render host,
// telemetry at 1 Hz, a thin client driving frames for ~4 virtual seconds.
GridRunResult run_telemetry_grid() {
  obs::MetricsRegistry::global().reset_values();
  obs::FlightRecorder::global().clear();
  obs::Tracer::global().reset();
  util::SimClock clock;
  obs::set_clock(&clock);

  GridRunResult result;
  {
    RaveGrid grid(clock, net::ethernet_100mbit());
    DataService& data = grid.add_data_service("datahost");
    scene::SceneTree tree;
    tree.add_child(scene::kRootNode, "ball", mesh::make_uv_sphere(0.5f, 24, 18));
    EXPECT_TRUE(data.create_session("demo", std::move(tree)).ok());
    RenderService::Options options;
    options.profile = sim::centrino_laptop();
    options.simulate_timing = true;
    grid.add_render_service("laptop", options);
    EXPECT_TRUE(grid.join("laptop", "datahost", "demo").ok());
    EXPECT_TRUE(data.distribute("demo").ok());

    obs::Collector::Options collect;
    collect.interval = 1.0;
    grid.enable_telemetry(collect, obs::default_render_slos(/*target_fps=*/5.0));

    ThinClient client(clock, grid.fabric());
    EXPECT_TRUE(
        client.connect(grid.render_service("laptop")->client_access_point(), "demo").ok());
    scene::Camera cam;
    cam.eye = {0, 0, 3};
    const auto pump = [&grid] { grid.pump_all(); };
    const double start = clock.now();
    while (clock.now() - start < 4.0) {
      cam.orbit(0.1f, 0.0f);
      auto frame = client.request_frame(cam, 64, 48, 10.0, pump);
      EXPECT_TRUE(frame.ok()) << frame.error();
      grid.pump_all();
    }
    result.jsonl = grid.collector()->export_jsonl();
    result.slo = grid.slo_engine()->format_current();
    result.dashboard = grid.telemetry_dashboard();
  }
  obs::set_clock(nullptr);
  return result;
}

TEST(TelemetryGrid, CollectorStoreAndSloAreDeterministicUnderSimClock) {
  // Warmup primes every lazily-registered metric family so both measured
  // runs start from an identical registry shape.
  (void)run_telemetry_grid();
  const GridRunResult first = run_telemetry_grid();
  const GridRunResult second = run_telemetry_grid();

  write_artifact("grid_run.jsonl", first.jsonl);
  write_artifact("grid_run_repeat.jsonl", second.jsonl);
  write_artifact("grid_final_scrape.txt", obs::MetricsRegistry::global().scrape());
  write_artifact("grid_dashboard.txt", first.dashboard);

  ASSERT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.slo, second.slo);
  EXPECT_EQ(first.dashboard, second.dashboard);
  // The collector tagged the render host and picked up its frame family.
  EXPECT_NE(first.jsonl.find("\"host\":\"laptop\""), std::string::npos);
  EXPECT_NE(first.jsonl.find("rave_frame_seconds_bucket"), std::string::npos);
  // The dashboard shows sparklines and objectives.
  EXPECT_NE(first.dashboard.find("frame ms"), std::string::npos) << first.dashboard;
  EXPECT_NE(first.dashboard.find("-- objectives"), std::string::npos) << first.dashboard;
}

TEST(TelemetryGrid, DeadHostLeavesGapWithoutStallingOthers) {
  obs::MetricsRegistry::global().reset_values();
  obs::FlightRecorder::global().clear();
  util::SimClock clock;
  obs::set_clock(&clock);
  {
    RaveGrid grid(clock, net::ethernet_100mbit());
    grid.add_data_service("datahost");
    grid.add_render_service("laptop");
    grid.add_render_service("xeon");
    obs::Collector::Options collect;
    collect.interval = 1.0;
    grid.enable_telemetry(collect);

    for (int i = 0; i < 8; ++i) {
      clock.advance(0.5);
      grid.pump_all();
    }
    uint64_t laptop_scrapes = 0;
    uint64_t xeon_scrapes = 0;
    for (const auto& h : grid.collector()->health()) {
      if (h.host == "laptop") laptop_scrapes = h.scrapes;
      if (h.host == "xeon") xeon_scrapes = h.scrapes;
    }
    EXPECT_GT(laptop_scrapes, 0u);

    // Kill the laptop's SOAP listener: scrapes of it must fail from now
    // on, while the other targets keep collecting.
    grid.fabric().unlisten("laptop/soap");
    for (int i = 0; i < 12; ++i) {
      clock.advance(0.5);
      grid.pump_all();
    }
    for (const auto& h : grid.collector()->health()) {
      if (h.host == "laptop") {
        EXPECT_EQ(h.scrapes, laptop_scrapes);  // no successes after the kill
        EXPECT_GE(h.gaps, 3u);
        EXPECT_FALSE(h.last_error.empty());
      }
      if (h.host == "xeon") {
        EXPECT_GT(h.scrapes, xeon_scrapes);
      }
    }
    // The gap is visible as history and as a structured event, and the
    // target is still subscribed (a recovered host would resume).
    EXPECT_TRUE(
        grid.collector()->store().contains({"laptop", "rave_collector_gaps_total", ""}));
    EXPECT_NE(obs::FlightRecorder::global().dump().find("scrape_gap"), std::string::npos);
    EXPECT_EQ(grid.collector()->target_count(), 3u);
  }
  obs::set_clock(nullptr);
}

TEST(TelemetryGrid, AdvisorTriggersRebalanceAndExplainsThroughStatus) {
  obs::MetricsRegistry::global().reset_values();
  obs::FlightRecorder::global().clear();
  util::SimClock clock;
  obs::set_clock(&clock);
  {
    RaveGrid grid(clock, net::ethernet_100mbit());
    DataService& data = grid.add_data_service("datahost");
    scene::SceneTree tree;
    tree.add_child(scene::kRootNode, "a", mesh::make_uv_sphere(0.5f, 24, 18));
    tree.add_child(scene::kRootNode, "b", mesh::make_uv_sphere(0.4f, 20, 16));
    tree.add_child(scene::kRootNode, "c", mesh::make_uv_sphere(0.3f, 16, 12));
    ASSERT_TRUE(data.create_session("demo", std::move(tree)).ok());
    // Equal profiles so distribution gives BOTH hosts payload nodes: the
    // burning host must hold work for the shed to be observable.
    RenderService::Options options;
    options.profile = sim::centrino_laptop();
    grid.add_render_service("laptop", options);
    grid.add_render_service("helper", options);
    ASSERT_TRUE(grid.join("laptop", "datahost", "demo").ok());
    ASSERT_TRUE(grid.join("helper", "datahost", "demo").ok());
    ASSERT_TRUE(data.distribute("demo").ok());
    grid.enable_telemetry();
    grid.pump_until_idle();

    // Synthetic telemetry judgement (overrides the SLO-engine advisor
    // enable_telemetry wired in): the laptop's frame p99 is burning.
    // No load report has tripped any EWMA flag, so without the advisor
    // this pump round would plan nothing.
    data.set_trend_advisor([](const std::string& host) {
      TrendAdvisory trend;
      if (host == "laptop") {
        trend.slo_burning = true;
        trend.note = "frame_p99 host=laptop: BURNING value=0.08 bound=0.066";
      }
      return trend;
    });
    const uint64_t before = data.stats().rebalances;
    clock.advance(1.0);
    grid.pump_all();
    EXPECT_GT(data.stats().rebalances, before);

    const std::string summary = data.last_plan_summary("demo");
    ASSERT_FALSE(summary.empty());
    EXPECT_NE(summary.find("slo-burn"), std::string::npos) << summary;
    EXPECT_NE(summary.find("frame_p99 host=laptop"), std::string::npos) << summary;
    // The same decision is in the flight ring…
    EXPECT_NE(obs::FlightRecorder::global().dump().find("slo-burn"), std::string::npos);
    // …and one status call away: the host status carries the explain and
    // both dashboards render it.
    const auto statuses = grid.collect_status();
    const HostStatus* datahost = nullptr;
    for (const HostStatus& status : statuses)
      if (status.has_data_service) datahost = &status;
    ASSERT_NE(datahost, nullptr);
    EXPECT_NE(datahost->last_migration.find("slo-burn"), std::string::npos);
    EXPECT_NE(format_dashboard(statuses).find("last migration plan:"), std::string::npos);
    EXPECT_NE(grid.telemetry_dashboard().find("-- last migration (datahost)"),
              std::string::npos);
  }
  obs::set_clock(nullptr);
}

// The delivery-observability dashboard lines are data-gated: they render
// only when the scraped series exist. Drive the real pipeline — registry
// families → scrape → collector ingest → format_telemetry_dashboard — so
// the series keys the dashboard looks up are exactly what ingest stores.
TEST(TelemetryDashboard, RendersRelayNetqAndVolumeLines) {
  obs::MetricsRegistry::global().reset_values();
  auto& reg = obs::MetricsRegistry::global();
  util::SimClock clock;
  obs::Collector::Options options;
  options.interval = 1.0;
  obs::Collector collector(clock, options);
  collector.add_target(
      {"edge", [&]() -> util::Result<std::string> { return reg.scrape(); }});

  // First scrape: the relay cache totals, a standing write-queue depth,
  // and one queue-wait / volume-march observation each.
  reg.counter("rave_fanout_relay_total", {{"result", "hit"}}).inc(30);
  reg.counter("rave_fanout_relay_total", {{"result", "forward"}}).inc(10);
  reg.gauge("rave_net_write_queue_depth").set(3);
  reg.histogram("rave_net_queue_wait_seconds").observe(0.004);
  auto& volume = reg.histogram("rave_volume_seconds", {{"host", "edge"}});
  volume.observe(0.02);
  clock.advance(1.0);
  collector.tick();
  // Second scrape: the deltas the mean/quantile windows need.
  reg.histogram("rave_net_queue_wait_seconds").observe(0.008);
  volume.observe(0.02);
  volume.observe(0.04);
  clock.advance(1.0);
  collector.tick();

  HostStatus host;
  host.host = "edge";
  host.has_render_service = true;
  RenderStatus render;
  render.host = "edge";
  render.bricks_skipped = 77;
  host.renders.push_back(render);

  obs::SloEngine slo;
  const std::string text = format_telemetry_dashboard({host}, collector, slo, clock.now());
  EXPECT_NE(text.find("relay    30/40 misses served locally (75% hit)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("netq     depth 3"), std::string::npos) << text;
  EXPECT_NE(text.find("wait p99(5s)"), std::string::npos) << text;
  // Two frames marched 0.06s between scrapes: a 30.0 ms mean march cost.
  EXPECT_NE(text.find("volume"), std::string::npos) << text;
  EXPECT_NE(text.find("last 30.0 ms"), std::string::npos) << text;
  EXPECT_NE(text.find("bricks-skipped 77"), std::string::npos) << text;
}

}  // namespace
}  // namespace rave::core

// Unit tests for the util substrate: math, results, serialization, clocks,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <numeric>
#include <thread>

#include "util/clock.hpp"
#include "util/result.hpp"
#include "util/serial.hpp"
#include "util/thread_pool.hpp"
#include "util/vec.hpp"

namespace rave::util {
namespace {

TEST(Vec3, BasicArithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0f, (Vec3{2, 4, 6}));
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Vec3, CrossProductIsOrthogonal) {
  const Vec3 a{1, 0, 0}, b{0, 1, 0};
  EXPECT_EQ(cross(a, b), (Vec3{0, 0, 1}));
  const Vec3 v1{1.5f, -2.0f, 0.3f}, v2{0.7f, 4.0f, -1.1f};
  const Vec3 c = cross(v1, v2);
  EXPECT_NEAR(dot(c, v1), 0.0f, 1e-5f);
  EXPECT_NEAR(dot(c, v2), 0.0f, 1e-5f);
}

TEST(Vec3, NormalizeHandlesZero) {
  EXPECT_EQ(normalize(Vec3{0, 0, 0}), (Vec3{0, 0, 0}));
  const Vec3 n = normalize(Vec3{3, 4, 0});
  EXPECT_NEAR(n.length(), 1.0f, 1e-6f);
}

TEST(Mat4, IdentityIsNeutral) {
  const Mat4 id = Mat4::identity();
  const Vec3 p{1.5f, -2.5f, 3.0f};
  EXPECT_EQ(id.transform_point(p), p);
  const Mat4 m = Mat4::translate({1, 2, 3}) * Mat4::scale({2, 2, 2});
  EXPECT_EQ((m * id).m, m.m);
  EXPECT_EQ((id * m).m, m.m);
}

TEST(Mat4, TranslateThenScaleComposition) {
  const Mat4 m = Mat4::translate({1, 0, 0}) * Mat4::scale({2, 2, 2});
  // Scale applies first (column-major composition).
  const Vec3 p = m.transform_point({1, 1, 1});
  EXPECT_EQ(p, (Vec3{3, 2, 2}));
}

TEST(Mat4, RotationPreservesLength) {
  const Mat4 r = Mat4::rotate_y(0.7f) * Mat4::rotate_x(-1.2f) * Mat4::rotate_z(2.1f);
  const Vec3 p{1, 2, 3};
  EXPECT_NEAR(r.transform_point(p).length(), p.length(), 1e-4f);
}

TEST(Mat4, InverseRoundTrip) {
  const Mat4 m = Mat4::translate({4, -2, 7}) * Mat4::rotate_y(0.3f) * Mat4::scale({2, 3, 0.5f});
  const Mat4 inv = m.inverse();
  const Vec3 p{1.2f, 3.4f, -0.6f};
  const Vec3 round = inv.transform_point(m.transform_point(p));
  EXPECT_NEAR(round.x, p.x, 1e-3f);
  EXPECT_NEAR(round.y, p.y, 1e-3f);
  EXPECT_NEAR(round.z, p.z, 1e-3f);
}

TEST(Mat4, LookAtMapsEyeToOrigin) {
  const Vec3 eye{5, 3, 8};
  const Mat4 view = Mat4::look_at(eye, {0, 0, 0}, {0, 1, 0});
  const Vec3 at_origin = view.transform_point(eye);
  EXPECT_NEAR(at_origin.length(), 0.0f, 1e-4f);
  // The target lies on the -Z axis in view space.
  const Vec3 target_view = view.transform_point({0, 0, 0});
  EXPECT_LT(target_view.z, 0.0f);
  EXPECT_NEAR(target_view.x, 0.0f, 1e-4f);
}

TEST(Mat4, PerspectiveMapsNearFarPlanes) {
  const Mat4 proj = Mat4::perspective(deg_to_rad(60.0f), 1.0f, 1.0f, 100.0f);
  const Vec4 near_point = proj * Vec4{0, 0, -1.0f, 1.0f};
  EXPECT_NEAR(near_point.z / near_point.w, -1.0f, 1e-4f);
  const Vec4 far_point = proj * Vec4{0, 0, -100.0f, 1.0f};
  EXPECT_NEAR(far_point.z / far_point.w, 1.0f, 1e-4f);
}

TEST(Aabb, ExtendAndContains) {
  Aabb box;
  EXPECT_FALSE(box.valid());
  box.extend({1, 1, 1});
  box.extend({-1, 2, 0});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0, 1.5f, 0.5f}));
  EXPECT_FALSE(box.contains({0, 3, 0}));
  EXPECT_EQ(box.center(), (Vec3{0, 1.5f, 0.5f}));
}

TEST(Aabb, TransformedCoversRotatedCorners) {
  Aabb box;
  box.extend({-1, -1, -1});
  box.extend({1, 1, 1});
  const Aabb rotated = box.transformed(Mat4::rotate_z(kPi / 4.0f));
  EXPECT_NEAR(rotated.hi.x, std::sqrt(2.0f), 1e-4f);
  EXPECT_NEAR(rotated.lo.x, -std::sqrt(2.0f), 1e-4f);
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  Result<int> bad = make_error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  Status failed = make_error("broken");
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error(), "broken");
}

TEST(Serial, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.f32(3.25f);
  w.f64(-1.5e100);
  w.boolean(true);
  w.str("hello rave");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.f64(), -1.5e100);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello rave");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, WireFormatIsLittleEndian) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.data().size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serial, OverReadSetsErrorFlagNotUb) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  (void)r.u32();
  EXPECT_FALSE(r.ok());
}

TEST(Serial, SpansRoundTrip) {
  std::vector<float> floats{1.0f, -2.5f, 3.75f};
  std::vector<uint32_t> ints{10, 20, 4000000000u};
  ByteWriter w;
  w.f32_span(floats);
  w.u32_span(ints);
  ByteReader r(w.data());
  EXPECT_EQ(r.f32_span(), floats);
  EXPECT_EQ(r.u32_span(), ints);
}

TEST(Base64, RoundTripAllLengths) {
  for (size_t len = 0; len < 32; ++len) {
    std::vector<uint8_t> data(len);
    std::iota(data.begin(), data.end(), static_cast<uint8_t>(len));
    const std::string text = base64_encode(data);
    auto back = base64_decode(text);
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(back.value(), data) << "length " << len;
  }
}

TEST(Base64, KnownVector) {
  const std::string text = base64_encode(std::vector<uint8_t>{'M', 'a', 'n'});
  EXPECT_EQ(text, "TWFu");
  EXPECT_FALSE(base64_decode("not*valid!").ok());
}

TEST(SimClock, AdvanceAndAutoAdvanceWait) {
  SimClock clock(10.0);
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 12.5);
  clock.wait_until(20.0);  // auto-advance: moves time itself
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
  clock.wait_until(5.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.now(), 20.0);
}

TEST(SimClock, BlockingWaitReleasedByAdvance) {
  SimClock clock;
  clock.set_auto_advance(false);
  std::thread waiter([&] { clock.wait_until(1.0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  clock.advance(2.0);
  waiter.join();
  EXPECT_GE(clock.now(), 1.0);
}

TEST(RealClock, MonotonicAndSleeps) {
  RealClock clock;
  const double t0 = clock.now();
  clock.sleep_for(0.01);
  EXPECT_GE(clock.now() - t0, 0.009);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> done;
  done.reserve(100);
  for (int i = 0; i < 100; ++i)
    done.push_back(pool.submit_future([&] { count.fetch_add(1); }));
  for (auto& f : done) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForFromPoolWorkersDoesNotDeadlock) {
  // Regression: render-service sessions run on the pool and call
  // parallel_for from worker threads. Before the caller helped drain its
  // own range this deadlocked once every worker was blocked waiting.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 4; ++i) {
    done.push_back(pool.submit_future(
        [&] { pool.parallel_for(16, [&](size_t) { total.fetch_add(1); }); }));
  }
  for (auto& f : done) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(60)), std::future_status::ready)
        << "nested parallel_for deadlocked";
    f.get();
  }
  EXPECT_EQ(total.load(), 4 * 16);
}

TEST(ThreadPool, ParallelForNestedInsideParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](size_t) {
    pool.parallel_for(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * 8);
}

}  // namespace
}  // namespace rave::util

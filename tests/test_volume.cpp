// Volume sub-block distribution tests (paper §6 / Visapult-style): block
// decomposition with seam-continuous sampling, scene-node explosion, and
// composited block rendering matching the monolithic volume.
#include <gtest/gtest.h>

#include "mesh/fields.hpp"
#include "render/raycast.hpp"
#include "render/rasterizer.hpp"
#include "scene/volume.hpp"

namespace rave::scene {
namespace {

VoxelGridData test_grid(uint32_t n = 16) {
  Aabb bounds;
  bounds.extend({-1, -1, -1});
  bounds.extend({1, 1, 1});
  VoxelGridData grid = mesh::rasterize_field(mesh::ball_field({0.2f, 0, 0}, 0.9f), bounds, n, n,
                                             n);
  grid.iso_low = 0.05f;
  grid.opacity_scale = 3.0f;
  return grid;
}

TEST(VolumeSplit, BlockCountAndCoverage) {
  const VoxelGridData grid = test_grid(16);
  const auto blocks = split_voxel_grid(grid, 2, 2, 2);
  ASSERT_EQ(blocks.size(), 8u);
  // Union of block bounds covers the grid bounds.
  Aabb covered;
  size_t total_voxels = 0;
  for (const auto& b : blocks) {
    covered.extend(b.bounds());
    total_voxels += b.voxel_count();
  }
  EXPECT_NEAR(covered.lo.x, grid.bounds().lo.x, 1e-5f);
  EXPECT_NEAR(covered.hi.z, grid.bounds().hi.z, 1e-5f);
  // Overlap means at least as many voxels as the original.
  EXPECT_GE(total_voxels, grid.voxel_count());
}

TEST(VolumeSplit, SamplingContinuousAcrossSeams) {
  const VoxelGridData grid = test_grid(16);
  const auto blocks = split_voxel_grid(grid, 2, 1, 1);
  ASSERT_EQ(blocks.size(), 2u);
  // Probe points near the seam: for any point inside a block's interior
  // sampling window, the block agrees with the monolithic grid.
  for (float x = -0.4f; x <= 0.4f; x += 0.05f) {
    const Vec3 p{x, 0.1f, -0.05f};
    const float reference = grid.sample(p);
    for (const auto& b : blocks) {
      const Aabb inner{b.bounds().lo + b.spacing, b.bounds().hi - b.spacing};
      if (!inner.contains(p)) continue;
      EXPECT_NEAR(b.sample(p), reference, 1e-4f) << "x=" << x;
    }
  }
}

TEST(VolumeSplit, DegenerateRequestsClamp) {
  const VoxelGridData grid = test_grid(4);
  const auto blocks = split_voxel_grid(grid, 64, 64, 64);  // far more than voxels
  EXPECT_GE(blocks.size(), 1u);
  for (const auto& b : blocks) {
    EXPECT_GE(b.nx, 2u);  // still sampleable
    EXPECT_GE(b.ny, 2u);
  }
  EXPECT_TRUE(split_voxel_grid(VoxelGridData{}, 2, 2, 2).empty());
}

TEST(VolumeExplode, NodeBecomesGroupOfBlocks) {
  SceneTree tree;
  const NodeId vol = tree.add_child(kRootNode, "volume", test_grid(12),
                                    util::Mat4::translate({5, 0, 0}));
  auto blocks = explode_volume_node(tree, vol, 2, 2, 1);
  ASSERT_TRUE(blocks.ok()) << blocks.error();
  EXPECT_EQ(blocks.value().size(), 4u);
  EXPECT_EQ(tree.find(vol)->kind(), NodeKind::Group);
  for (NodeId id : blocks.value()) {
    EXPECT_EQ(tree.find(id)->parent, vol);
    EXPECT_EQ(tree.find(id)->kind(), NodeKind::VoxelGrid);
  }
  // Blocks are now independent distribution units.
  EXPECT_EQ(tree.payload_node_ids().size(), 4u);
  // The parent transform still applies (blocks moved with the group).
  const Aabb world = tree.world_bounds();
  EXPECT_GT(world.lo.x, 3.0f);

  EXPECT_FALSE(explode_volume_node(tree, vol, 2, 2, 2).ok());  // no longer a volume
  EXPECT_FALSE(explode_volume_node(tree, 777, 2, 2, 2).ok());
}

TEST(VolumeRender, BlockCompositeMatchesMonolithic) {
  // Ray-casting the blocks independently into one framebuffer approximates
  // the monolithic volume (small seam differences from overlap sampling).
  SceneTree mono;
  mono.add_child(kRootNode, "volume", test_grid(16));
  SceneTree split;
  const NodeId vol = split.add_child(kRootNode, "volume", test_grid(16));
  ASSERT_TRUE(explode_volume_node(split, vol, 2, 1, 1).ok());

  Camera cam;
  cam.eye = {0, 0, 4};
  render::FrameBuffer a(64, 64), b(64, 64);
  a.clear({0, 0, 0});
  b.clear({0, 0, 0});
  render::raycast_tree_volumes(a, mono, cam);
  render::raycast_tree_volumes(b, split, cam);

  // Compare mean intensity: within a few percent.
  auto mean = [](const render::FrameBuffer& fb) {
    double sum = 0;
    for (uint8_t v : fb.color()) sum += v;
    return sum / static_cast<double>(fb.color().size());
  };
  const double mono_mean = mean(a);
  const double split_mean = mean(b);
  EXPECT_GT(mono_mean, 5.0);  // something rendered
  EXPECT_NEAR(split_mean, mono_mean, mono_mean * 0.25);
}

TEST(VolumeOrdering, ViewDistanceOrdersBlocks) {
  const VoxelGridData grid = test_grid(16);
  const auto blocks = split_voxel_grid(grid, 2, 1, 1);
  ASSERT_EQ(blocks.size(), 2u);
  const Vec3 eye{5, 0, 0};  // looking from +x: the +x block is nearer
  const float d0 = block_view_distance(blocks[0], util::Mat4::identity(), eye);
  const float d1 = block_view_distance(blocks[1], util::Mat4::identity(), eye);
  EXPECT_GT(d0, d1);  // block 0 is the -x half
}

}  // namespace
}  // namespace rave::scene
